package sched

import "sync/atomic"

// task is one schedulable unit of work: a closure that runs to completion
// (or suspends itself onto a cell's waiter list) on the worker it is handed.
type task = func(*Worker)

// deque is a Chase–Lev work-stealing deque of tasks. The owning worker
// pushes and pops at the bottom (LIFO — the Lemma 4.1 stack discipline:
// the most recently forked thread runs first), while thieves steal single
// tasks from the top, the oldest end, which is where the biggest pieces of
// work sit in a divide-and-conquer unfolding.
//
// This is the growable-ring formulation of Chase & Lev ("Dynamic circular
// work-stealing deque") with the memory-order discipline of Lê et al.
// ("Correct and efficient work-stealing for weak memory models"), mapped
// onto Go's sequentially consistent sync/atomic operations. Ring slots are
// atomic.Pointer so the race detector observes the publish/claim edges.
type deque struct {
	top    atomic.Int64 // next index to steal from; only ever incremented
	bottom atomic.Int64 // next index to push at; owned by the worker
	ring   atomic.Pointer[ring]
}

// ring is a power-of-two circular buffer. Rings are immutable once
// superseded (grow copies the live range into a fresh ring), so a thief
// holding a stale ring still reads valid task pointers for any index it
// can win the top CAS on.
type ring struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newRing(n int64) *ring {
	return &ring{mask: n - 1, slots: make([]atomic.Pointer[task], n)}
}

func (r *ring) size() int64          { return r.mask + 1 }
func (r *ring) get(i int64) *task    { return r.slots[i&r.mask].Load() }
func (r *ring) put(i int64, t *task) { r.slots[i&r.mask].Store(t) }

const initialRingSize = 64

func (d *deque) init() {
	d.ring.Store(newRing(initialRingSize))
}

// push appends t at the bottom. Owner only. It returns the resulting depth
// so the caller can track the high-water mark.
func (d *deque) push(t task) int64 {
	b := d.bottom.Load()
	tp := d.top.Load()
	r := d.ring.Load()
	if b-tp >= r.size() {
		r = d.grow(tp, b)
	}
	r.put(b, &t)
	d.bottom.Store(b + 1)
	return b + 1 - tp
}

// pop removes and returns the most recently pushed task, or nil if the
// deque is empty (or a thief won the last element). Owner only.
func (d *deque) pop() task {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil
	}
	tk := d.ring.Load().get(b)
	if t == b {
		// Last element: race the thieves for it.
		if !d.top.CompareAndSwap(t, t+1) {
			tk = nil // a thief got it first
		}
		d.bottom.Store(b + 1)
	}
	if tk == nil {
		return nil
	}
	return *tk
}

// steal takes the oldest task from the top. Any goroutine may call it.
// It returns nil if the deque was observed empty or the claim was lost to
// a concurrent pop/steal.
func (d *deque) steal() task {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	tk := d.ring.Load().get(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	if tk == nil {
		return nil
	}
	return *tk
}

// stealHalf takes up to half of the tasks the deque held when the sweep
// arrived (at least one): the first claimed task is returned to run
// immediately and each further one is handed to spill, oldest first,
// for the thief to requeue on its own deque. Any goroutine may call it;
// nil means the deque was observed empty or the first claim lost.
//
// Every claim is an ordinary single-task top CAS — deliberately NOT a
// batched top.CompareAndSwap(t, t+k). The batch CAS looks cheaper but
// is unsound in Chase–Lev: an owner popping toward the top only CASes
// on the LAST element, so it can run the task at t+1 without top ever
// moving, after which a thief's successful t→t+2 claim would hand out
// an already-executed task. The claim-loop keeps exactly the
// owner/thief race rules the single steal has (each element changes
// hands through one CAS on its own index) and still moves a subtree
// burst in one sweep visit, which is all the locality win: half the
// victim's run of sibling subtrees migrates together instead of
// leaking away one node per sweep.
func (d *deque) stealHalf(spill func(task)) task {
	want := d.size() / 2 // snapshot before claiming; racy is fine, it only sizes the batch
	first := d.steal()
	if first == nil {
		return nil
	}
	for i := int64(1); i < want; i++ {
		t := d.steal()
		if t == nil {
			break // owner or another thief drained it; keep what we have
		}
		spill(t)
	}
	return first
}

// empty reports whether the deque looks empty; used by the parking
// protocol's re-check, so a stale answer only costs a wakeup.
func (d *deque) empty() bool {
	return d.top.Load() >= d.bottom.Load()
}

// size reports the current number of queued tasks; like empty it is a
// racy monitoring read (top and bottom move concurrently), clamped at 0.
func (d *deque) size() int64 {
	if n := d.bottom.Load() - d.top.Load(); n > 0 {
		return n
	}
	return 0
}

// grow doubles the ring, copying the live range [t, b). Owner only; old
// rings are left to the GC (thieves may still be reading them).
func (d *deque) grow(t, b int64) *ring {
	old := d.ring.Load()
	nr := newRing(old.size() * 2)
	for i := t; i < b; i++ {
		nr.put(i, old.get(i))
	}
	d.ring.Store(nr)
	return nr
}
