package sched

// Lifecycle-edge regression tests: worker RNG seeding and steal victim
// distribution, submissions racing Shutdown, Wait after Shutdown, and
// reads of cells stranded by Shutdown. These are the edges the serving
// layer (internal/serve) leans on: it shuts runtimes down for real, with
// external readers in flight.

import (
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestSeedRandNonzeroAndDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1024; i++ {
		s := seedRand(uint64(i))
		if s == 0 {
			t.Fatalf("seedRand(%d) = 0 — zero is a fixed point of xorshift", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seedRand collision: ids %d and %d share state %#x", prev, i, s)
		}
		seen[s] = i
	}
}

// TestVictimSelectionVaries drives the victim RNG directly: every worker
// must produce more than one distinct first-victim offset across the
// fleet, and each individual worker's sweep starts must vary over time.
// With the old constant-sequence degeneration both properties fail.
func TestVictimSelectionVaries(t *testing.T) {
	const p = 8
	firstOffsets := map[uint64]bool{}
	for i := 0; i < p; i++ {
		w := &Worker{rng: seedRand(uint64(i))}
		offsets := map[uint64]bool{}
		for k := 0; k < 64; k++ {
			offsets[w.nextRand()%p] = true
		}
		if len(offsets) < 2 {
			t.Errorf("worker %d: 64 draws visited %d distinct offsets — victim selection is constant", i, len(offsets))
		}
		w2 := &Worker{rng: seedRand(uint64(i))}
		firstOffsets[w2.nextRand()%p] = true
	}
	if len(firstOffsets) < 2 {
		t.Errorf("all %d workers start their steal sweep at the same victim", p)
	}
}

// TestStealsDistributeAcrossVictims is the behavioral half of the RNG
// fix: at p=4, two producers fill their deques and hold their workers
// busy until each has been stolen from, so the two idle workers must
// spread theft across ≥ 2 distinct victims.
func TestStealsDistributeAcrossVictims(t *testing.T) {
	const p = 4
	rt := NewRuntime(p)
	defer rt.Shutdown()

	deadline := time.Now().Add(20 * time.Second)
	for producer := 0; producer < 2; producer++ {
		rt.Fork(nil, func(w *Worker) {
			const n = 128
			for i := 0; i < n; i++ {
				rt.Fork(w, func(*Worker) {})
			}
			// Hold this worker busy until a thief takes from our deque,
			// yielding so thieves get CPU time even at GOMAXPROCS=1.
			for w.stats.stolenFrom.Load() == 0 && time.Now().Before(deadline) {
				runtime.Gosched()
			}
		})
	}
	rt.Wait()

	ctr := rt.Counters()
	victims := 0
	for _, v := range ctr.WorkerStolenFrom {
		if v > 0 {
			victims++
		}
	}
	if victims < 2 {
		t.Errorf("steals hit %d victim(s) (per-victim counts %v, %d steals total) — want ≥ 2 at p=%d",
			victims, ctr.WorkerStolenFrom, ctr.Steals, p)
	}
}

// TestWaitReturnsAfterShutdownWithStrandedWork reproduces the stranded-
// submission edge: tasks sit in the injection queue when Shutdown stops
// the workers, so pending never drains — Wait must still return promptly,
// and reads of the stranded results must error rather than hang.
func TestWaitReturnsAfterShutdownWithStrandedWork(t *testing.T) {
	rt := NewRuntime(1)

	gateStarted := make(chan struct{})
	gate := make(chan struct{})
	rt.Fork(nil, func(*Worker) {
		close(gateStarted)
		<-gate
	})
	<-gateStarted

	// These land in the injection queue behind the gated worker and will
	// never run.
	cells := make([]*Cell[int], 5)
	for i := range cells {
		c := NewCell[int](rt)
		cells[i] = c
		rt.Fork(nil, func(w *Worker) { c.Write(w, 1) })
	}

	shutdownDone := make(chan struct{})
	go func() {
		rt.Shutdown()
		close(shutdownDone)
	}()
	for !rt.Stopped() {
		runtime.Gosched()
	}
	close(gate) // let the worker observe stopping and exit
	select {
	case <-shutdownDone:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not complete")
	}

	waitDone := make(chan struct{})
	go func() {
		rt.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after Shutdown with stranded submissions")
	}

	for i, c := range cells {
		if _, err := c.ReadErr(); !errors.Is(err, ErrShutdown) {
			t.Fatalf("cell %d: ReadErr = %v, want ErrShutdown", i, err)
		}
	}
}

func TestReadErrAfterShutdown(t *testing.T) {
	rt := NewRuntime(2)
	c := NewCell[string](rt)
	rt.Shutdown()

	done := make(chan struct{})
	var err error
	go func() {
		_, err = c.ReadErr()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ReadErr hung on a cell stranded by Shutdown")
	}
	if !errors.Is(err, ErrShutdown) {
		t.Fatalf("ReadErr = %v, want ErrShutdown", err)
	}

	// Read must panic, not hang.
	panicked := make(chan bool, 1)
	go func() {
		defer func() { panicked <- recover() != nil }()
		c.Read()
	}()
	select {
	case p := <-panicked:
		if !p {
			t.Fatal("Read returned normally on a stranded cell")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Read hung on a cell stranded by Shutdown")
	}
}

// TestWriteAfterShutdownDropsWaitersKeepsValue: a write racing past
// Shutdown cannot requeue its waiters (the workers are gone), but the
// value must land and pending accounting must return to zero so a later
// Wait is a no-op.
func TestWriteAfterShutdownDropsWaitersKeepsValue(t *testing.T) {
	rt := NewRuntime(1)
	c := NewCell[int](rt)

	// Park one external continuation on the cell (counts as pending).
	got := make(chan int, 1)
	c.Touch(nil, func(_ *Worker, v int) { got <- v })

	rt.Shutdown()
	c.Write(nil, 42) // requeue path: waiters dropped, value stored

	if p := rt.pending.Load(); p != 0 {
		t.Errorf("pending = %d after dropped requeue, want 0", p)
	}
	if v, err := c.ReadErr(); err != nil || v != 42 {
		t.Errorf("ReadErr = %d, %v — the value itself must survive Shutdown", v, err)
	}
	waitDone := make(chan struct{})
	go func() {
		rt.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after post-Shutdown write")
	}
	select {
	case <-got:
		t.Fatal("dropped continuation ran anyway")
	default:
	}
}
