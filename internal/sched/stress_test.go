package sched_test

// Fork-count stress: the point of the sched runtime is that suspended
// threads are continuations, not goroutines, so a computation with a
// million forks must hold the process's goroutine count near p. These
// tests sample runtime.NumGoroutine while driving (a) a producer/consumer
// dependency chain where every link suspends before its input exists and
// (b) a fully forked treap union through the paralg port.

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pipefut/internal/paralg"
	"pipefut/internal/sched"
	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

// samplePeakGoroutines polls the goroutine count until stop is closed.
func samplePeakGoroutines(stop <-chan struct{}, peak *atomic.Int64) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if n := int64(runtime.NumGoroutine()); n > peak.Load() {
			peak.Store(n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// goroutineSlack covers the test framework's own goroutines plus the
// sampler and transient externals; the bound being checked is O(p), not
// O(forks), so a small constant is the right scale.
const goroutineSlack = 8

func TestStressChainGoroutinesBounded(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000 // keep the -race CI lane fast
	}
	const p = 4
	rt := sched.NewRuntime(p)
	defer rt.Shutdown()

	baseline := runtime.NumGoroutine()
	stop := make(chan struct{})
	defer close(stop)
	var peak atomic.Int64
	go samplePeakGoroutines(stop, &peak)

	// Build the chain back-to-front so every link suspends on an
	// unwritten cell, then release it by writing the head. The head write
	// is gated on every link's Touch having returned (each suspension is
	// published by then), so exactly n suspensions happen-before the
	// release: without the gate, reactivated links run LIFO off the
	// writer's deque ahead of the injection-queue drain and late links
	// would find their input already written (fast path, no suspension).
	cells := make([]*sched.Cell[int], n+1)
	for i := range cells {
		cells[i] = sched.NewCell[int](rt)
	}
	var unparked atomic.Int64
	unparked.Store(int64(n))
	allParked := make(chan struct{})
	for i := 0; i < n; i++ {
		i := i
		rt.Fork(nil, func(w *sched.Worker) {
			cells[i].Touch(w, func(w *sched.Worker, v int) { cells[i+1].Write(w, v+1) })
			if unparked.Add(-1) == 0 {
				close(allParked)
			}
		})
	}
	<-allParked
	cells[0].Write(nil, 0)
	if got := cells[n].Read(); got != n {
		t.Fatalf("chain result = %d, want %d", got, n)
	}
	rt.Wait()

	ctr := rt.Counters()
	if ctr.Spawns < int64(n) {
		t.Errorf("spawns = %d, want ≥ %d", ctr.Spawns, n)
	}
	if ctr.Suspensions < int64(n) {
		t.Errorf("suspensions = %d, want ≥ %d — every link should have parked", ctr.Suspensions, n)
	}
	if pk := peak.Load(); pk > int64(baseline+p+goroutineSlack) {
		t.Errorf("peak goroutines = %d (baseline %d, p=%d) — suspensions are leaking goroutines", pk, baseline, p)
	}
}

func TestStressUnionGoroutinesBounded(t *testing.T) {
	size := 1 << 17
	if testing.Short() {
		size = 1 << 14
	}
	const p = 4
	s := paralg.NewSchedRuntime(p)
	defer s.Close()

	baseline := runtime.NumGoroutine()
	stop := make(chan struct{})
	defer close(stop)
	var peak atomic.Int64
	go samplePeakGoroutines(stop, &peak)

	rng := workload.NewRNG(7)
	ka, kb := workload.OverlappingKeySets(rng, size, size, 0.1)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
	want := seqtreap.Union(ta, tb)

	// SpawnDepth 64 forks at every recursion step: maximum fork count,
	// which on the goroutine runtime would mean hundreds of thousands of
	// goroutines in flight.
	cfg := paralg.RConfig{R: s, SpawnDepth: 64}
	got := cfg.Union(nil, paralg.RFromSeqTreap(s, ta), paralg.RFromSeqTreap(s, tb))
	if !seqtreap.Equal(paralg.RToSeqTreap(got), want) {
		t.Fatal("union does not match the sequential oracle")
	}
	s.RT.Wait()

	ctr := s.RT.Counters()
	t.Logf("union of 2×%d keys: %s", size, ctr.String())
	if ctr.Spawns < int64(size) {
		t.Errorf("spawns = %d, want ≥ %d at full fork grain", ctr.Spawns, size)
	}
	if pk := peak.Load(); pk > int64(baseline+p+goroutineSlack) {
		t.Errorf("peak goroutines = %d (baseline %d, p=%d)", pk, baseline, p)
	}
}
