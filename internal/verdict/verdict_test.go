package verdict

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"

	"pipefut/internal/core"
	"pipefut/internal/trace"
)

var update = flag.Bool("update", false, "rewrite verdicts.json from the current analyses")

func TestMeet(t *testing.T) {
	cases := []struct{ a, b, want Class }{
		{General, Linear, General},
		{Linear, Forwarded, Linear},
		{Forwarded, Forwarded, Forwarded},
		{Unanalyzed, Linear, Linear},
		{Unanalyzed, Unanalyzed, Unanalyzed},
		{"", Forwarded, Forwarded},
		{General, Unanalyzed, General},
	}
	for _, c := range cases {
		if got := Meet(c.a, c.b); got != c.want {
			t.Errorf("Meet(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
		if got := Meet(c.b, c.a); got != c.want {
			t.Errorf("Meet(%q, %q) = %q, want %q", c.b, c.a, got, c.want)
		}
	}
}

func TestParseClass(t *testing.T) {
	for _, s := range []string{"general", "linear", "forwarded", "unanalyzed"} {
		if _, err := ParseClass(s); err != nil {
			t.Errorf("ParseClass(%q): %v", s, err)
		}
	}
	if _, err := ParseClass("superlinear"); err == nil {
		t.Error("ParseClass accepted an unknown class")
	}
}

func TestClassOf(t *testing.T) {
	// Analyzed entries answer for themselves.
	if got := ClassOf("costalg.Join"); got != Forwarded {
		t.Errorf("ClassOf(costalg.Join) = %q, want forwarded", got)
	}
	if got := ClassOf("costalg.Merge"); got != Linear {
		t.Errorf("ClassOf(costalg.Merge) = %q, want linear", got)
	}
	// Unanalyzed RConfig ports inherit their witness group's meet.
	if got := ClassOf("paralg.RConfig.Merge"); got != Linear {
		t.Errorf("ClassOf(paralg.RConfig.Merge) = %q, want linear (group meet)", got)
	}
	if got := ClassOf("paralg.RConfig.Join"); got != Forwarded {
		t.Errorf("ClassOf(paralg.RConfig.Join) = %q, want forwarded (group meet)", got)
	}
	// The split group has no analyzed member: sound fallback.
	if got := ClassOf("paralg.RConfig.Split"); got != General {
		t.Errorf("ClassOf(paralg.RConfig.Split) = %q, want general", got)
	}
	// Unknown entries get the always-sound fallback.
	if got := ClassOf("paralg.RConfig.Nonesuch"); got != General {
		t.Errorf("ClassOf(unknown) = %q, want general", got)
	}
}

// pipelinedTrace records a fork whose result cell the main thread
// touches with only a data edge ordering it after the write (in
// schedule terms the touch races the write): a legal linear flow that
// is NOT forwarded.
func pipelinedTrace() *trace.Trace {
	tr := trace.New()
	root := tr.Root()
	child := tr.Step(root, core.ForkEdge)
	w := tr.Step(child, core.ThreadEdge)
	tr.CellWrite(1, w)
	touch := tr.Step(root, core.ThreadEdge)
	tr.CellTouch(1, touch)
	tr.DataEdge(w, touch)
	return tr
}

// doubleTouchTrace touches one cell twice, both control-after the
// write: not linear, yet forwarded.
func doubleTouchTrace() *trace.Trace {
	tr := trace.New()
	root := tr.Root()
	w := tr.Step(root, core.ThreadEdge)
	tr.CellWrite(1, w)
	t1 := tr.Step(w, core.ThreadEdge)
	tr.CellTouch(1, t1)
	t2 := tr.Step(t1, core.ThreadEdge)
	tr.CellTouch(1, t2)
	return tr
}

func TestCheckTrace(t *testing.T) {
	pipelined := pipelinedTrace()
	if err := CheckTrace(Linear, pipelined); err != nil {
		t.Errorf("CheckTrace(linear, pipelined single-touch trace): %v", err)
	}
	if err := CheckTrace(Forwarded, pipelined); err == nil {
		t.Error("CheckTrace(forwarded) accepted a pipelined trace whose touch races the write")
	} else if !strings.Contains(err.Error(), "forwarded") {
		t.Errorf("forwarded rejection should name the claim: %v", err)
	}

	double := doubleTouchTrace()
	if err := CheckTrace(Linear, double); err == nil {
		t.Error("CheckTrace(linear) accepted a double-touched cell")
	}
	// Both touches are control-after the write: forwarded holds even
	// though linear does not — the classes are incomparable dynamically.
	if err := CheckTrace(Forwarded, double); err != nil {
		t.Errorf("CheckTrace(forwarded, post-write double touch): %v", err)
	}

	if err := CheckTrace(General, double); err != nil {
		t.Errorf("CheckTrace(general) must accept anything: %v", err)
	}
	if err := CheckTrace(Unanalyzed, double); err != nil {
		t.Errorf("CheckTrace(unanalyzed) must accept anything: %v", err)
	}
	if err := CheckTrace("bogus", double); err == nil {
		t.Error("CheckTrace accepted an unknown class")
	}
}

// TestGoldenManifestUpToDate regenerates the manifest from the current
// analyses and fails on any drift against the checked-in golden — the
// same check CI's manifest-drift lane runs. Regenerate with
//
//	go test ./internal/verdict -run TestGoldenManifestUpToDate -update
//
// or `go run ./cmd/pipelint -verdicts > internal/verdict/verdicts.json`.
func TestGoldenManifestUpToDate(t *testing.T) {
	m, err := Generate("../..")
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	got := m.JSON()
	if *update {
		if err := os.WriteFile("verdicts.json", got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, goldenJSON) {
		t.Errorf("verdict manifest drift: regenerate verdicts.json (see test comment)\n-- regenerated --\n%s\n-- golden --\n%s", got, goldenJSON)
	}

	// Second generation from scratch must be byte-identical.
	m2, err := Generate("../..")
	if err != nil {
		t.Fatalf("Generate (second run): %v", err)
	}
	if !bytes.Equal(m2.JSON(), got) {
		t.Error("Generate is not deterministic across runs")
	}
}

// TestManifestShape pins structural invariants the runtime relies on.
func TestManifestShape(t *testing.T) {
	g := Golden()
	for group, members := range Groups {
		gv, ok := g.Groups[group]
		if !ok {
			t.Errorf("group %s missing from golden manifest", group)
			continue
		}
		if gv.Class == Unanalyzed || gv.Class == "" {
			t.Errorf("group %s has non-claiming class %q; Generate must fall back to general", group, gv.Class)
		}
		// The group class must be the meet of its analyzed members.
		want := Unanalyzed
		for _, m := range members {
			ev, ok := g.Entries[m]
			if !ok {
				t.Errorf("entry %s (group %s) missing from golden manifest", m, group)
				continue
			}
			want = Meet(want, ev.Class)
		}
		if want == Unanalyzed {
			want = General
		}
		if gv.Class != want {
			t.Errorf("group %s: class %q, want meet of members %q", group, gv.Class, want)
		}
	}
	for e := range g.Entries {
		found := false
		for _, members := range Groups {
			for _, m := range members {
				if m == e {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("golden entry %s belongs to no witness group", e)
		}
	}
}
