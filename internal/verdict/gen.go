package verdict

// The manifest generator: source-loads internal/costalg and
// internal/paralg, classifies every entry point in Groups, and meets the
// classes per witness group. `pipelint -verdicts` drives it from the
// command line; TestGoldenManifestUpToDate drives it in CI to fail on
// drift against the checked-in verdicts.json.
//
// Classification per entry, most to least specific claim:
//
//  1. No recognized cell operation (new/fork/write/touch) reachable from
//     the entry → Unanalyzed. This is what keeps vacuity honest: the
//     RConfig ports reach their cells through the Runtime interface,
//     which the SSA-lite builder does not model, and an absence of
//     findings over code the analyses cannot see is no verdict at all.
//  2. flow.Summaries.Forwarded proves every touch waits on a
//     synchronously-materialized cell → Forwarded. The verdict is
//     relative to the entry contract (callers pass materialized cell
//     arguments); the dynamic lane checks actual runs.
//  3. No flowlinear diagnostic lands in any reachable function →
//     Linear.
//  4. Otherwise → General, carrying the first disqualifying finding.

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pipefut/internal/analysis"
	"pipefut/internal/analysis/flow"
	"pipefut/internal/analysis/load"
	"pipefut/internal/ssa"
)

// staticPkg is one source-loaded package with its SSA-lite program,
// flowlinear diagnostics, and interprocedural summaries.
type staticPkg struct {
	name  string
	fset  *token.FileSet
	prog  *ssa.Program
	diags []analysis.Diagnostic
	sums  *flow.Summaries
	costs *flow.CellCosts
}

// loadPkg typechecks root/internal/<name> from source and runs the
// analyses the classifier consumes.
func loadPkg(root, name string) (*staticPkg, error) {
	dir, err := filepath.Abs(filepath.Join(root, "internal", name))
	if err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			files = append(files, filepath.Join(dir, n))
		}
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	pkg, err := load.ParseAndCheck(fset, "pipefut/internal/"+name, files, load.SourceImporter(fset, dir))
	if err != nil {
		return nil, fmt.Errorf("load %s: %v", name, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{flow.FlowLinear}, fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("flowlinear over %s: %v", name, err)
	}
	prog := ssa.Build(fset, pkg.Files, pkg.Types, pkg.Info)
	return &staticPkg{
		name:  name,
		fset:  fset,
		prog:  prog,
		diags: diags,
		sums:  flow.ComputeSummaries(prog),
		costs: flow.ComputeCellCosts(prog),
	}, nil
}

// Generate classifies every entry point in Groups over the repository
// rooted at root and returns the manifest. The result is deterministic:
// classification consults only source text, and the manifest serializes
// with sorted keys.
func Generate(root string) (*Manifest, error) {
	pkgs := map[string]*staticPkg{}
	// seqtreap is loaded for the seqsafe twins only: it hosts the plain
	// sequential tree code the below-cutoff paths run.
	for _, name := range []string{"costalg", "paralg", "seqtreap"} {
		sp, err := loadPkg(root, name)
		if err != nil {
			return nil, err
		}
		pkgs[name] = sp
	}

	m := &Manifest{
		Entries: make(map[string]EntryVerdict),
		Groups:  make(map[string]GroupVerdict),
		CellBudget: &CellBudget{
			Entries: make(map[string]Budget),
			Groups:  make(map[string]Budget),
			SeqSafe: make(map[string]SeqSafeVerdict),
		},
	}
	groupNames := make([]string, 0, len(Groups))
	for g := range Groups {
		groupNames = append(groupNames, g)
	}
	sort.Strings(groupNames)
	for _, g := range groupNames {
		gc := Unanalyzed
		gb := Budget{Kind: BudgetUnanalyzed}
		for _, spec := range Groups[g] {
			pkgName, fnSpec, ok := strings.Cut(spec, ".")
			if !ok {
				return nil, fmt.Errorf("bad entry spec %q in group %s", spec, g)
			}
			sp := pkgs[pkgName]
			if sp == nil {
				return nil, fmt.Errorf("entry spec %q names unknown package", spec)
			}
			ev, err := sp.classify(fnSpec)
			if err != nil {
				return nil, fmt.Errorf("group %s: %v", g, err)
			}
			if prev, dup := m.Entries[spec]; dup && prev != ev {
				return nil, fmt.Errorf("entry %q classified twice with different verdicts", spec)
			}
			m.Entries[spec] = ev
			gc = Meet(gc, ev.Class)
			bv, err := sp.budget(fnSpec, ev.Class)
			if err != nil {
				return nil, fmt.Errorf("group %s: %v", g, err)
			}
			m.CellBudget.Entries[spec] = bv
			gb = JoinBudget(gb, bv)
		}
		if gc == Unanalyzed {
			// A group with no analyzed member claims nothing; record the
			// sound fallback rather than a vacuous strong class.
			gc = General
		}
		m.Groups[g] = GroupVerdict{Class: gc}
		m.CellBudget.Groups[g] = gb
	}
	if err := genSeqSafe(pkgs, m.CellBudget); err != nil {
		return nil, err
	}
	return m, nil
}

// budget assigns one entry point its allocation bound. Entries whose
// cell traffic the analyses cannot see (class Unanalyzed — allocations
// flow through the opaque runtime interface exactly like touches do)
// claim nothing; a const(0) there would be vacuously false.
func (sp *staticPkg) budget(spec string, class Class) (Budget, error) {
	if class == Unanalyzed {
		return Budget{
			Kind:   BudgetUnanalyzed,
			Detail: "allocations flow through an opaque runtime interface",
		}, nil
	}
	fn, err := sp.entry(spec)
	if err != nil {
		return Budget{}, err
	}
	b := sp.costs.BoundOf(fn)
	kind := BudgetConst
	switch b.Kind {
	case flow.BSpine:
		kind = BudgetSpine
	case flow.BLinear:
		kind = BudgetLinear
	}
	return Budget{Kind: kind, K: b.K, Detail: sp.costs.Attribution(fn)}, nil
}

// seqTwins maps each grain-cutoff entry point to the sequential twins
// its below-cutoff path runs: the plain seqtreap construction plus the
// paralg chunk helpers that wrap its output. The seqsafe verdict holds
// only if EVERY twin is proven cell-free; entries absent from this
// table never get a verdict and therefore never honor GrainCutoff.
var seqTwins = map[string][]string{
	"paralg.RConfig.Merge":       {"paralg.chunkMerge", "paralg.chunkSplitGE", "paralg.chunkTop"},
	"paralg.RConfig.Union":       {"seqtreap.Union", "paralg.chunkTop"},
	"paralg.RConfig.Diff":        {"seqtreap.Diff", "paralg.chunkTop"},
	"paralg.RConfig.Intersect":   {"seqtreap.Intersect", "paralg.chunkTop"},
	"paralg.RConfig.Join":        {"seqtreap.Join", "paralg.chunkTop"},
	"paralg.RConfig.BuildTreap":  {"seqtreap.FromKeys", "paralg.chunkTop"},
	"paralg.RConfig.InsertKeys":  {"seqtreap.Union", "seqtreap.FromKeys", "paralg.chunkTop"},
	"paralg.RConfig.DeleteKeys":  {"seqtreap.Diff", "seqtreap.FromKeys", "paralg.chunkTop"},
	"paralg.RConfig.Split":       {"paralg.chunkSplitGE", "paralg.chunkTop"},
	"paralg.RConfig.SplitRanges": {"paralg.chunkSplitGE", "paralg.chunkTop"},
}

// genSeqSafe proves (or refuses to prove) each seqTwins entry cell-free.
func genSeqSafe(pkgs map[string]*staticPkg, cb *CellBudget) error {
	entries := make([]string, 0, len(seqTwins))
	for e := range seqTwins {
		entries = append(entries, e)
	}
	sort.Strings(entries)
	for _, e := range entries {
		sv := SeqSafeVerdict{Safe: true}
		var proven []string
		for _, twin := range seqTwins[e] {
			pkgName, fnSpec, ok := strings.Cut(twin, ".")
			if !ok {
				return fmt.Errorf("bad seqsafe twin spec %q for %s", twin, e)
			}
			sp := pkgs[pkgName]
			if sp == nil {
				return fmt.Errorf("seqsafe twin %q names unknown package", twin)
			}
			fn, err := sp.entry(fnSpec)
			if err != nil {
				return fmt.Errorf("seqsafe twin for %s: %v", e, err)
			}
			if ok, why := sp.costs.SeqSafe(fn); !ok {
				sv = SeqSafeVerdict{Safe: false, Detail: twin + ": " + why}
				break
			}
			proven = append(proven, twin)
		}
		if sv.Safe {
			sv.Detail = "cell-free twins: " + strings.Join(proven, ", ")
		}
		cb.SeqSafe[e] = sv
	}
	return nil
}

// classify assigns one entry point its flow class.
func (sp *staticPkg) classify(spec string) (EntryVerdict, error) {
	fn, err := sp.entry(spec)
	if err != nil {
		return EntryVerdict{}, err
	}
	reach := reachableFuncs(fn)
	if !touchesCells(reach) {
		return EntryVerdict{
			Class:  Unanalyzed,
			Detail: "no recognized cell operation reachable (cells flow through an opaque runtime interface)",
		}, nil
	}
	fwdOK, fwdReason := sp.sums.Forwarded(fn)
	if fwdOK {
		return EntryVerdict{Class: Forwarded}, nil
	}
	if linear, finding := sp.linearVerdict(reach); linear {
		return EntryVerdict{Class: Linear, Detail: "not forwarded: " + fwdReason}, nil
	} else {
		return EntryVerdict{Class: General, Detail: finding}, nil
	}
}

// entry finds the function named by spec: "Merge" for a package-level
// function, "Config.Merge" for a method.
func (sp *staticPkg) entry(spec string) (*ssa.Func, error) {
	recv, name := "", spec
	if i := strings.IndexByte(spec, '.'); i >= 0 {
		recv, name = spec[:i], spec[i+1:]
	}
	for _, f := range sp.prog.Funcs {
		if f.Obj == nil || f.Obj.Name() != name {
			continue
		}
		r := f.Sig.Recv()
		if recv == "" {
			if r == nil {
				return f, nil
			}
			continue
		}
		if r != nil && recvTypeName(r.Type()) == recv {
			return f, nil
		}
	}
	return nil, fmt.Errorf("no function %s in package %s", spec, sp.name)
}

func recvTypeName(typ types.Type) string {
	if p, ok := typ.(*types.Pointer); ok {
		typ = p.Elem()
	}
	if n, ok := typ.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// reachableFuncs walks the intra-program call graph from entry: direct
// calls to declared functions, calls through variables bound to literals
// (the builder resolves those into Callee), and fork bodies.
func reachableFuncs(entry *ssa.Func) map[*ssa.Func]bool {
	seen := map[*ssa.Func]bool{entry: true}
	work := []*ssa.Func{entry}
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		add := func(f *ssa.Func) {
			if f != nil && !seen[f] {
				seen[f] = true
				work = append(work, f)
			}
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				add(in.Callee)
				if in.CalleeObj != nil {
					add(fn.Prog.DeclaredFunc(in.CalleeObj))
				}
				if in.Fork != nil {
					add(in.Fork.Body)
				}
			}
		}
	}
	return seen
}

// touchesCells reports whether any reachable instruction performs a
// recognized cell operation the flow classes constrain. Probes are
// deliberately excluded: an entry that only probes cells claims nothing
// a cell variant could violate, and stays Unanalyzed.
func touchesCells(reach map[*ssa.Func]bool) bool {
	for fn := range reach {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ssa.OpNewCell, ssa.OpFork, ssa.OpWrite, ssa.OpTouch:
					return true
				}
			}
		}
	}
	return false
}

// linearVerdict reports whether flowlinear considers everything in reach
// linear; when it does not, the second result describes the first
// disqualifying finding. Positions render with the bare file name so the
// manifest is stable across checkouts.
func (sp *staticPkg) linearVerdict(reach map[*ssa.Func]bool) (bool, string) {
	for _, d := range sp.diags {
		for fn := range reach {
			if fn.Syntax != nil && d.Pos >= fn.Syntax.Pos() && d.Pos <= fn.Syntax.End() {
				pos := sp.fset.Position(d.Pos)
				return false, fmt.Sprintf("%s:%d:%d: %s", filepath.Base(pos.Filename), pos.Line, pos.Column, d.Message)
			}
		}
	}
	return true, ""
}
