package paralg

// Grain coarsening: below-cutoff subtrees as CHUNK cells instead of
// cell-per-node trees. The X-SERVE benchmark's headline gap is cell
// count — every treap node access is a sched cell round-trip, ~500
// cells for one 32-key union — and most of those cells sit in subtrees
// so small that pipelining them buys nothing. A chunk cell wraps a
// plain (persistent, immutable) seqtreap subtree behind the NodeCell
// interface with ZERO scheduler cells: it is born written, its Touch
// runs the continuation inline, and it expands to RNode form lazily,
// one node at a time, only if a pipelined consumer actually walks it.
//
// The entry-point fast paths below-cutoff (see port.go, batch.go,
// split.go) recognize chunk operands and run the sequential seqtreap
// twin of the whole operation, producing a new chunk — a single
// frontier cell per coarsened subtree where the pipelined path would
// allocate one cell per node. Sequential-twin safety is a STATIC
// verdict: RConfig.GrainCutoff is honored only for entry points whose
// twins the cellcost analysis proved cell-free (verdict.SeqSafeOf,
// manifest section cell_budget.seqsafe); everything else fails closed
// to the pipelined path. internal/verifycross re-proves the claim
// dynamically (zero cells below cutoff, budgets respected above).
//
// Chunk cells are sound under every CellDiscipline: they never suspend
// a continuation (nothing is ever pending on a born-written cell), so
// the linear/forwarded contracts hold vacuously, and the lazy expansion
// race is benign — RNodes are immutable, seqtreap subtrees are shared
// persistently, and a CAS loser's node is discarded before anyone sees
// it.

import (
	"sync/atomic"

	"pipefut/internal/seqtreap"
)

// chunk is the shared box behind one chunk cell: the wrapped subtree
// and the memoized one-level expansion.
type chunk struct {
	t    *seqtreap.Node
	node atomic.Pointer[RNode]
}

// chunkNodeCell adapts a chunk to NodeCell. Like the wrappers in
// schedrt.go it is a concrete single-pointer struct, so converting it
// to the interface allocates nothing.
type chunkNodeCell struct{ ch *chunk }

// chunkCell wraps a (possibly nil) seqtreap subtree as a born-written
// NodeCell. No scheduler cell is allocated, now or ever.
func chunkCell(t *seqtreap.Node) chunkNodeCell { return chunkNodeCell{&chunk{t: t}} }

// expand materializes the chunk's root as an RNode with chunk children,
// memoized so repeated touches share one spine. Racing expanders CAS;
// the loser's node is garbage nobody observed.
func (c chunkNodeCell) expand() *RNode {
	ch := c.ch
	if ch.t == nil {
		return nil
	}
	if n := ch.node.Load(); n != nil {
		return n
	}
	t := ch.t
	n := &RNode{Key: t.Key, Prio: t.Prio, Left: chunkCell(t.Left), Right: chunkCell(t.Right)}
	if ch.node.CompareAndSwap(nil, n) {
		return n
	}
	return ch.node.Load()
}

// Write implements NodeCell. A chunk cell is born written; a second
// write is the same single-assignment violation it is on every variant.
func (c chunkNodeCell) Write(Ctx, *RNode) {
	panic("paralg: write of a chunk cell (born written)")
}

// Touch implements NodeCell: always inline, never a suspension.
func (c chunkNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) { k(ctx, c.expand()) }

// Read implements NodeCell.
func (c chunkNodeCell) Read() *RNode { return c.expand() }

// chunkTop is expand without the wrapper: the root RNode (nil for an
// empty subtree) whose children are chunk cells. Entry-point fast paths
// use it to write a sequential result into a real frontier cell.
func chunkTop(t *seqtreap.Node) *RNode {
	if t == nil {
		return nil
	}
	return &RNode{Key: t.Key, Prio: t.Prio, Left: chunkCell(t.Left), Right: chunkCell(t.Right)}
}

// sizeUpTo returns cap minus t's node count, or -1 as soon as t proves
// larger than cap — an early-exit walk, so the per-entry size check
// costs O(cutoff), not O(n).
func sizeUpTo(t *seqtreap.Node, cap int) int {
	if t == nil {
		return cap
	}
	if cap <= 0 {
		return -1
	}
	cap = sizeUpTo(t.Left, cap-1)
	if cap < 0 {
		return -1
	}
	return sizeUpTo(t.Right, cap)
}

// chunkArg returns the seqtreap subtree behind a below-cutoff chunk
// operand. It fails (routing the caller to the pipelined path) when the
// cutoff is off for this entry point, when the operand is not a chunk,
// or when the chunk is too big to swallow sequentially — a big chunk
// instead decomposes lazily through Touch until its subtrees fit.
func (c RConfig) chunkArg(t NodeCell) (*seqtreap.Node, bool) {
	if c.cutoff <= 0 {
		return nil, false
	}
	cc, ok := t.(chunkNodeCell)
	if !ok {
		return nil, false
	}
	if sizeUpTo(cc.ch.t, c.cutoff) < 0 {
		return nil, false
	}
	return cc.ch.t, true
}

// chunkArgs is chunkArg over both operands of a binary set operation.
func (c RConfig) chunkArgs(a, b NodeCell) (ta, tb *seqtreap.Node, ok bool) {
	if ta, ok = c.chunkArg(a); !ok {
		return nil, nil, false
	}
	if tb, ok = c.chunkArg(b); !ok {
		return nil, nil, false
	}
	return ta, tb, true
}

// chunkSplitGE is rsplit's sequential twin, shape-identical by the same
// case analysis (s <= key descends left and keeps the node on the
// ≥-side): keys < s and keys ≥ s, path-copying like every seqtreap op.
func chunkSplitGE(s int, t *seqtreap.Node) (lt, ge *seqtreap.Node) {
	if t == nil {
		return nil, nil
	}
	if s <= t.Key {
		l1, r1 := chunkSplitGE(s, t.Left)
		return l1, &seqtreap.Node{Key: t.Key, Prio: t.Prio, Left: r1, Right: t.Right}
	}
	l1, r1 := chunkSplitGE(s, t.Right)
	return &seqtreap.Node{Key: t.Key, Prio: t.Prio, Left: t.Left, Right: l1}, r1
}

// chunkMerge is mergeInto's sequential twin, shape-identical by the
// same recursion (a's structure on top, b split in): disjoint-key BST
// merge, Section 3.1.
func chunkMerge(a, b *seqtreap.Node) *seqtreap.Node {
	if a == nil {
		return b
	}
	lt, ge := chunkSplitGE(a.Key, b)
	return &seqtreap.Node{
		Key:   a.Key,
		Prio:  a.Prio,
		Left:  chunkMerge(a.Left, lt),
		Right: chunkMerge(a.Right, ge),
	}
}
