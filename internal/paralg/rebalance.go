package paralg

import "pipefut/internal/future"

// SNode is a size-annotated tree node for the real-execution rebalancing
// pass (end of Section 3.1).
type SNode struct {
	Key   int
	Prio  int64
	Size  int
	LSize int
	Left  *future.Cell[*SNode]
	Right *future.Cell[*SNode]
}

// STree is a (possibly future) reference to a size-annotated tree.
type STree = *future.Cell[*SNode]

// Annotate computes subtree sizes bottom-up on goroutines.
func (c Config) Annotate(tree Tree) STree {
	return c.annotate(0, tree)
}

func (c Config) annotate(d int, tree Tree) STree {
	body := func() *SNode {
		n := tree.Read()
		if n == nil {
			return nil
		}
		lc := c.annotate(d+1, n.Left)
		rc := c.annotate(d+1, n.Right)
		l, r := lc.Read(), rc.Read()
		ls, rs := 0, 0
		if l != nil {
			ls = l.Size
		}
		if r != nil {
			rs = r.Size
		}
		return &SNode{
			Key: n.Key, Prio: n.Prio,
			Size: 1 + ls + rs, LSize: ls,
			Left: future.Done(l), Right: future.Done(r),
		}
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

// Rebalance rebuilds the size-annotated tree (of known size n) perfectly
// balanced, pipelining the rank splits into the recursive rebalances.
func (c Config) Rebalance(tree STree, n int) Tree {
	return c.rebalance(0, tree, n)
}

func (c Config) rebalance(d int, tree STree, n int) Tree {
	body := func() *Node {
		if n == 0 {
			tree.Read()
			return nil
		}
		root := tree.Read()
		mid := n / 2
		ao, lo, ro := c.splitRank(d, root, mid)
		l := c.rebalance(d+1, lo, mid)
		r := c.rebalance(d+1, ro, n-mid-1)
		at := ao.Read()
		return &Node{Key: at.Key, Prio: at.Prio, Left: l, Right: r}
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

func (c Config) splitRank(d int, n *SNode, r int) (at, lo, ro STree) {
	body := func(ao, lo, ro *future.Cell[*SNode]) {
		c.splitRankWalk(d, n, r, ao, lo, ro)
	}
	if c.spawn(d) {
		return future.Spawn3(body)
	}
	return future.Call3(body)
}

func (c Config) splitRankWalk(d int, n *SNode, r int, ao, lo, ro *future.Cell[*SNode]) {
	if n == nil {
		panic("paralg: rank out of range in splitRank")
	}
	switch {
	case r < n.LSize:
		a1, l1, r1 := c.splitRankCell(d+1, n.Left, r)
		ro.Write(&SNode{
			Key: n.Key, Prio: n.Prio,
			Size: n.Size - r - 1, LSize: n.LSize - r - 1,
			Left: r1, Right: n.Right,
		})
		ao.Write(a1.Read())
		lo.Write(l1.Read())
	case r == n.LSize:
		ao.Write(n)
		lo.Write(n.Left.Read())
		ro.Write(n.Right.Read())
	default:
		a1, l1, r1 := c.splitRankCell(d+1, n.Right, r-n.LSize-1)
		lo.Write(&SNode{
			Key: n.Key, Prio: n.Prio,
			Size: r, LSize: n.LSize,
			Left: n.Left, Right: l1,
		})
		ao.Write(a1.Read())
		ro.Write(r1.Read())
	}
}

func (c Config) splitRankCell(d int, tree STree, r int) (at, lo, ro STree) {
	body := func(ao, lo, ro *future.Cell[*SNode]) {
		c.splitRankWalk(d, tree.Read(), r, ao, lo, ro)
	}
	if c.spawn(d) {
		return future.Spawn3(body)
	}
	return future.Call3(body)
}

// MergeBalanced merges two trees and rebalances the result — the full
// Section 3.1 composition on goroutines.
func (c Config) MergeBalanced(a, b Tree, total int) Tree {
	return c.Rebalance(c.Annotate(c.Merge(a, b)), total)
}
