package paralg

import (
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

func TestBuildTreapMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, cfgPick uint8) bool {
		n := int(n8)*4 + 1 // up to ~1k, crossing the direct-build cutoff
		rng := workload.NewRNG(uint64(seed))
		keys := workload.DistinctKeys(rng, n, 4*n)
		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := cfg.BuildTreap(keys)
		return seqtreap.Equal(ToSeqTreap(got), seqtreap.FromKeys(keys))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDeleteKeys(t *testing.T) {
	rng := workload.NewRNG(2)
	base := workload.DistinctKeys(rng, 1000, 100000)
	batch := workload.DistinctKeys(rng, 1000, 100000)
	tr := seqtreap.FromKeys(base)
	cfg := Config{SpawnDepth: 8}

	ins := cfg.InsertKeys(FromSeqTreap(tr), batch)
	if !seqtreap.Equal(ToSeqTreap(ins), seqtreap.Union(tr, seqtreap.FromKeys(batch))) {
		t.Fatal("InsertKeys differs from oracle")
	}
	del := cfg.DeleteKeys(FromSeqTreap(tr), batch)
	if !seqtreap.Equal(ToSeqTreap(del), seqtreap.Diff(tr, seqtreap.FromKeys(batch))) {
		t.Fatal("DeleteKeys differs from oracle")
	}
}

func TestBuildTreapRootAvailableEarly(t *testing.T) {
	rng := workload.NewRNG(3)
	keys := workload.DistinctKeys(rng, 50000, 1<<20)
	tr := Config{SpawnDepth: 10}.BuildTreap(keys)
	// The root (and any search path) must be readable without waiting
	// for full construction; just proving it terminates while valid.
	n := tr.Read()
	if n == nil {
		t.Fatal("empty root")
	}
	found := 0
	for _, k := range keys[:100] {
		cur := tr
		for {
			c := cur.Read()
			if c == nil {
				break
			}
			if c.Key == k {
				found++
				break
			}
			if k < c.Key {
				cur = c.Left
			} else {
				cur = c.Right
			}
		}
	}
	if found != 100 {
		t.Fatalf("found %d of 100 keys during construction", found)
	}
}
