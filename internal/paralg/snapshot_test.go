package paralg

import (
	"sort"
	"sync/atomic"
	"testing"

	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

// TestRSnapshotKeys checks the snapshot walk returns the full sorted key
// set, including when fired at a root whose tree is still materializing
// under a pipelined union — the durability layer's exact usage.
func TestRSnapshotKeys(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		rng := workload.NewRNG(11)
		for _, cutoff := range []int{0, 32} {
			ka, kb := workload.OverlappingKeySets(rng, 400, 400, 0.3)
			in := map[int]bool{}
			for _, k := range ka {
				in[k] = true
			}
			for _, k := range kb {
				in[k] = true
			}
			want := make([]int, 0, len(in))
			for k := range in {
				want = append(want, k)
			}
			sort.Ints(want)

			cfg := RConfig{R: r, SpawnDepth: 5, GrainCutoff: cutoff}
			u := cfg.Union(nil, RFromSeqTreap(r, seqtreap.FromKeys(ka)), RFromSeqTreap(r, seqtreap.FromKeys(kb)))

			var got atomic.Pointer[[]int]
			done := make(chan struct{})
			RSnapshotKeys(nil, u, func(_ Ctx, keys []int) {
				got.Store(&keys)
				close(done)
			})
			RWait(u)
			<-done

			keys := *got.Load()
			if len(keys) != len(want) {
				t.Fatalf("cutoff=%d: snapshot has %d keys, want %d", cutoff, len(keys), len(want))
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("cutoff=%d: keys[%d] = %d, want %d", cutoff, i, keys[i], want[i])
				}
			}
		}

		// Empty tree: the walk resolves immediately with no keys.
		done := make(chan struct{})
		RSnapshotKeys(nil, RFromSeqTreap(r, nil), func(_ Ctx, keys []int) {
			if len(keys) != 0 {
				t.Errorf("empty snapshot has %d keys", len(keys))
			}
			close(done)
		})
		<-done
	})
}
