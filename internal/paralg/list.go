package paralg

import "pipefut/internal/future"

// LNode is a real (goroutine-built) cons cell; the tail is a future, so
// lists stream between producers and consumers — Figure 1 and Figure 2
// executed for real.
type LNode struct {
	Head int
	Tail *future.Cell[*LNode]
}

// List is a (possibly future) reference to a list.
type List = *future.Cell[*LNode]

// FromSlice builds a fully materialized list.
func FromSlice(xs []int) List {
	tail := future.Done[*LNode](nil)
	for i := len(xs) - 1; i >= 0; i-- {
		tail = future.Done(&LNode{Head: xs[i], Tail: tail})
	}
	return tail
}

// ToSlice reads the whole list (blocking as needed).
func ToSlice(l List) []int {
	var out []int
	for {
		n := l.Read()
		if n == nil {
			return out
		}
		out = append(out, n.Head)
		l = n.Tail
	}
}

// Produce builds the list n, n-1, ..., 0, one goroutine per chunk of
// elements (chunking keeps goroutine counts sane for large n while
// preserving incremental availability).
func Produce(n, chunk int) List {
	if chunk < 1 {
		chunk = 1
	}
	return future.Spawn(func() *LNode { return produceChunk(n, chunk) })
}

func produceChunk(n, chunk int) *LNode {
	if n < 0 {
		return nil
	}
	// Produce `chunk` elements inline, then fork the rest.
	head := &LNode{Head: n}
	cur := head
	for i := 1; i < chunk && n-i >= 0; i++ {
		next := &LNode{Head: n - i}
		cur.Tail = future.Done(next)
		cur = next
	}
	rest := n - chunk
	cur.Tail = future.Spawn(func() *LNode { return produceChunk(rest, chunk) })
	return head
}

// Consume sums a (possibly still materializing) list.
func Consume(l List) int64 {
	var sum int64
	for {
		n := l.Read()
		if n == nil {
			return sum
		}
		sum += int64(n.Head)
		l = n.Tail
	}
}

// Quicksort is Halstead's future-based quicksort (Figure 2) on real
// goroutines, with a length-estimate grain bound d (recursion depth).
func (c Config) Quicksort(l, rest List) List {
	return c.qs(0, l, rest)
}

func (c Config) qs(d int, l, rest List) List {
	body := func() *LNode { return c.qsBody(d, l, rest) }
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

func (c Config) qsBody(d int, l, rest List) *LNode {
	n := l.Read()
	if n == nil {
		return rest.Read()
	}
	les, grt := c.partition(d, n.Head, n.Tail)
	return c.qsBody(d, les, future.Done(&LNode{Head: n.Head, Tail: c.qs(d+1, grt, rest)}))
}

func (c Config) partition(d int, pivot int, l List) (les, grt List) {
	body := func(lo, gro *future.Cell[*LNode]) {
		c.partitionBody(d, pivot, l, lo, gro)
	}
	if c.spawn(d) {
		return future.Spawn2(body)
	}
	return future.Call2(body)
}

func (c Config) partitionBody(d int, pivot int, l List, lo, gro *future.Cell[*LNode]) {
	n := l.Read()
	if n == nil {
		lo.Write(nil)
		gro.Write(nil)
		return
	}
	// Below the spawn bound, partition the whole remaining list
	// iteratively (no recursion, no cells in the middle).
	if !c.spawn(d) {
		lh, gh := seqPartition(pivot, n)
		lo.Write(lh)
		gro.Write(gh)
		return
	}
	l1, g1 := c.partition(d+1, pivot, n.Tail)
	if n.Head < pivot {
		lo.Write(&LNode{Head: n.Head, Tail: l1})
		gro.Write(g1.Read())
	} else {
		gro.Write(&LNode{Head: n.Head, Tail: g1})
		lo.Write(l1.Read())
	}
}

// seqPartition partitions the materializing list starting at n entirely in
// the calling goroutine, blocking on tails as needed.
func seqPartition(pivot int, n *LNode) (les, grt *LNode) {
	var lt, gt *LNode // tails of the output lists
	for n != nil {
		node := &LNode{Head: n.Head}
		if n.Head < pivot {
			if lt == nil {
				les = node
			} else {
				lt.Tail = future.Done(node)
			}
			lt = node
		} else {
			if gt == nil {
				grt = node
			} else {
				gt.Tail = future.Done(node)
			}
			gt = node
		}
		n = n.Tail.Read()
	}
	if lt != nil {
		lt.Tail = future.Done[*LNode](nil)
	}
	if gt != nil {
		gt.Tail = future.Done[*LNode](nil)
	}
	return les, grt
}
