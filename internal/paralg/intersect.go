package paralg

import "pipefut/internal/future"

// Intersect returns the treap of keys present in both treaps — the
// extension companion of Union and Diff, pipelined the same way.
func (c Config) Intersect(a, b Tree) Tree { return c.intersect(0, a, b) }

func (c Config) intersect(d int, a, b Tree) Tree {
	body := func() *Node {
		n1 := a.Read()
		if n1 == nil {
			return nil
		}
		n2 := b.Read()
		if n2 == nil {
			return nil
		}
		l2, r2, dup := c.splitM(d, n1.Key, n2)
		l := c.intersect(d+1, n1.Left, l2)
		r := c.intersect(d+1, n1.Right, r2)
		if dup.Read() != nil {
			return &Node{Key: n1.Key, Prio: n1.Prio, Left: l, Right: r}
		}
		return c.joinCells(d, l, r)
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}
