package paralg

// The snapshot walk: serialize a pinned root into its sorted key slice
// without ever blocking a goroutine. The durability layer
// (internal/persist) pins a published root — immutable by structural
// sharing, so the pin is O(1) — and runs this walk as a scheduler task;
// edges the appliers have not materialized yet suspend the walk's
// continuation on the cell like any other pipelined consumer, so the
// snapshot writer rides the same pipeline it is photographing.

import "sync/atomic"

// RSnapshotKeys walks the tree and calls k once with all keys in sorted
// order. Like RLen it descends both children of every node under an
// atomic open-walk countdown, so continuation nesting stays O(tree
// height) and independent subtrees materialize concurrently; unlike
// RLen it must emit keys *in order*, so each touch fills a slot in a
// pointer-mirror of the tree and whichever walk resolves last flattens
// the mirror in-order (iteratively — the mirror is as unbalanced as the
// treap, but the flatten is plain memory traversal, no touches).
func RSnapshotKeys(ctx Ctx, t NodeCell, k func(Ctx, []int)) {
	st := &rsnapState{k: k, root: &rsnapSlot{}}
	st.open.Store(1)
	st.walk(ctx, t, st.root)
}

// rsnapSlot mirrors one tree edge: full=false is a nil edge, full=true
// holds the node's key and two child slots.
type rsnapSlot struct {
	key         int
	full        bool
	left, right *rsnapSlot
}

type rsnapState struct {
	count atomic.Int64
	open  atomic.Int64 // walks started and not yet resolved at a nil edge
	root  *rsnapSlot
	k     func(Ctx, []int)
}

func (st *rsnapState) walk(ctx Ctx, t NodeCell, slot *rsnapSlot) {
	t.Touch(ctx, func(ctx Ctx, n *RNode) {
		if n == nil {
			if st.open.Add(-1) == 0 {
				st.finish(ctx)
			}
			return
		}
		slot.key, slot.full = n.Key, true
		slot.left, slot.right = &rsnapSlot{}, &rsnapSlot{}
		st.count.Add(1)
		st.open.Add(1) // two child walks replace this one: net +1 open
		st.walk(ctx, n.Left, slot.left)
		st.walk(ctx, n.Right, slot.right)
	})
}

// finish flattens the completed mirror in-order with an explicit stack;
// the treap's expected height is O(log n) but the flatten must not
// trust that.
func (st *rsnapState) finish(ctx Ctx) {
	out := make([]int, 0, st.count.Load())
	var stack []*rsnapSlot
	cur := st.root
	for cur.full || len(stack) > 0 {
		for cur.full {
			stack = append(stack, cur)
			cur = cur.left
		}
		cur = stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur.key)
		cur = cur.right
	}
	st.k(ctx, out)
}
