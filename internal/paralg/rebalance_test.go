package paralg

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/seqtree"
	"pipefut/internal/workload"
)

func TestAnnotateSizes(t *testing.T) {
	rng := workload.NewRNG(1)
	keys := workload.SortedDistinct(rng, 500, 5000)
	tr := seqtree.FromSortedBalanced(keys)
	ann := DefaultConfig.Annotate(FromSeqTree(tr))
	var check func(a STree, want *seqtree.Node) bool
	check = func(a STree, want *seqtree.Node) bool {
		n := a.Read()
		if n == nil || want == nil {
			return (n == nil) == (want == nil)
		}
		if n.Key != want.Key || n.Size != seqtree.Size(want) || n.LSize != seqtree.Size(want.Left) {
			return false
		}
		return check(n.Left, want.Left) && check(n.Right, want.Right)
	}
	if !check(ann, tr) {
		t.Fatal("annotation wrong")
	}
}

func TestMergeBalancedProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, cfgPick uint8) bool {
		n, m := int(n8%100)+1, int(m8%100)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.DisjointKeySets(rng, n, m)
		sort.Ints(ka)
		sort.Ints(kb)
		t1 := seqtree.FromSortedBalanced(ka)
		t2 := seqtree.FromSortedBalanced(kb)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		out := ToSeqTree(cfg.MergeBalanced(FromSeqTree(t1), FromSeqTree(t2), n+m))

		want := append(append([]int{}, ka...), kb...)
		sort.Ints(want)
		got := seqtree.Keys(out)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		maxH := 0
		for 1<<(maxH+1) < n+m+1 {
			maxH++
		}
		return seqtree.Height(out) <= maxH+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceEmpty(t *testing.T) {
	out := DefaultConfig.Rebalance(DefaultConfig.Annotate(FromSeqTree(nil)), 0)
	if out.Read() != nil {
		t.Fatal("empty rebalance must be empty")
	}
}

func TestRebalanceLarge(t *testing.T) {
	// A large skewed input, fully parallel path.
	rng := workload.NewRNG(2)
	keys := workload.SortedDistinct(rng, 20000, 200000)
	var tr *seqtree.Node
	for _, k := range keys {
		tr = seqtree.Merge(tr, &seqtree.Node{Key: k})
	}
	cfg := Config{SpawnDepth: 12}
	out := ToSeqTree(cfg.Rebalance(cfg.Annotate(FromSeqTree(tr)), len(keys)))
	if h := seqtree.Height(out); h > 16 {
		t.Fatalf("height %d, want ≤ 16 for 20000 keys", h)
	}
	got := seqtree.Keys(out)
	for i := range keys {
		if got[i] != keys[i] {
			t.Fatal("keys differ")
		}
	}
}
