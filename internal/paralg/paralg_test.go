package paralg

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
	"pipefut/internal/workload"
)

var testCfgs = []Config{
	{SpawnDepth: 0},  // fully sequential
	{SpawnDepth: 3},  // shallow parallelism
	{SpawnDepth: 64}, // spawn everywhere
}

func TestMergeMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8 uint8, cfgPick uint8) bool {
		n, m := int(n8%100)+1, int(m8%100)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.DisjointKeySets(rng, n, m)
		sort.Ints(ka)
		sort.Ints(kb)
		t1 := seqtree.FromSortedBalanced(ka)
		t2 := seqtree.FromSortedBalanced(kb)
		want := seqtree.Merge(t1, t2)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := cfg.Merge(FromSeqTree(t1), FromSeqTree(t2))
		return seqtree.Equal(ToSeqTree(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, cfgPick uint8) bool {
		n, m := int(n8%100)+1, int(m8%100)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
		ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
		want := seqtreap.Union(ta, tb)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := cfg.Union(FromSeqTreap(ta), FromSeqTreap(tb))
		return seqtreap.Equal(ToSeqTreap(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, cfgPick uint8) bool {
		n, m := int(n8%100)+1, int(m8%100)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
		ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
		want := seqtreap.Diff(ta, tb)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := cfg.Diff(FromSeqTreap(ta), FromSeqTreap(tb))
		return seqtreap.Equal(ToSeqTreap(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinMatchesOracle(t *testing.T) {
	rng := workload.NewRNG(3)
	keys := workload.SortedDistinct(rng, 200, 2000)
	ta := seqtreap.FromKeys(keys[:120])
	tb := seqtreap.FromKeys(keys[120:])
	want := seqtreap.Join(ta, tb)
	got := DefaultConfig.Join(FromSeqTreap(ta), FromSeqTreap(tb))
	if !seqtreap.Equal(ToSeqTreap(got), want) {
		t.Fatal("join differs from oracle")
	}
}

func TestMergesortSorts(t *testing.T) {
	f := func(seed uint16, n8 uint8, cfgPick uint8) bool {
		n := int(n8 % 200)
		rng := workload.NewRNG(uint64(seed))
		xs := rng.Perm(n)
		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := seqtree.Keys(ToSeqTree(cfg.Mergesort(xs)))
		if len(got) != n {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCases(t *testing.T) {
	e := FromSeqTree(nil)
	if got := DefaultConfig.Merge(e, e).Read(); got != nil {
		t.Fatal("merge of empties not empty")
	}
	if got := DefaultConfig.Union(FromSeqTreap(nil), FromSeqTreap(nil)).Read(); got != nil {
		t.Fatal("union of empties not empty")
	}
	if got := DefaultConfig.Diff(FromSeqTreap(nil), FromSeqTreap(nil)).Read(); got != nil {
		t.Fatal("diff of empties not empty")
	}
	Wait(e) // must not hang
}

// TestPipelineOverlap verifies real pipelining: a union consuming the
// output of another union completes without waiting for the first to be
// fully materialized (we can only check it completes and is correct — the
// overlap itself is what makes this terminate quickly).
func TestPipelineOverlap(t *testing.T) {
	rng := workload.NewRNG(4)
	ka := workload.DistinctKeys(rng, 2000, 100000)
	kb := workload.DistinctKeys(rng, 2000, 100000)
	kc := workload.DistinctKeys(rng, 2000, 100000)
	ta, tb, tc := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb), seqtreap.FromKeys(kc)

	cfg := Config{SpawnDepth: 10}
	// (A ∪ B) ∪ C where the second union starts immediately on the
	// still-materializing first result.
	u1 := cfg.Union(FromSeqTreap(ta), FromSeqTreap(tb))
	u2 := cfg.Union(u1, FromSeqTreap(tc))
	want := seqtreap.Union(seqtreap.Union(ta, tb), tc)
	if !seqtreap.Equal(ToSeqTreap(u2), want) {
		t.Fatal("chained unions differ from oracle")
	}
}

func TestWaitBlocksUntilComplete(t *testing.T) {
	rng := workload.NewRNG(5)
	ka, kb := workload.DisjointKeySets(rng, 3000, 3000)
	sort.Ints(ka)
	sort.Ints(kb)
	got := DefaultConfig.Merge(
		FromSeqTree(seqtree.FromSortedBalanced(ka)),
		FromSeqTree(seqtree.FromSortedBalanced(kb)))
	Wait(got)
	// After Wait, every cell must be ready without blocking.
	var walk func(tr Tree) int
	walk = func(tr Tree) int {
		n, ok := tr.TryRead()
		if !ok {
			t.Fatal("cell not ready after Wait")
		}
		if n == nil {
			return 0
		}
		return 1 + walk(n.Left) + walk(n.Right)
	}
	if walk(got) != 6000 {
		t.Fatal("wrong size")
	}
}
