package paralg

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
	"pipefut/internal/t26"
	"pipefut/internal/workload"
)

// portSpawnDepths mirrors testCfgs: sequential, shallow, everywhere.
var portSpawnDepths = []int{0, 3, 64}

// withPortRuntimes runs f once per runtime implementation. The sched
// runtime gets a small fixed worker pool; Close drains it afterwards.
func withPortRuntimes(t *testing.T, f func(t *testing.T, r Runtime)) {
	t.Run("go", func(t *testing.T) { f(t, GoRuntime{}) })
	t.Run("sched", func(t *testing.T) {
		s := NewSchedRuntime(4)
		defer s.Close()
		f(t, s)
	})
}

func TestPortMergeMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.DisjointKeySets(rng, n, m)
			sort.Ints(ka)
			sort.Ints(kb)
			t1 := seqtree.FromSortedBalanced(ka)
			t2 := seqtree.FromSortedBalanced(kb)
			want := seqtree.Merge(t1, t2)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.Merge(nil, RFromSeqTree(r, t1), RFromSeqTree(r, t2))
			return seqtree.Equal(RToSeqTree(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortUnionMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
			ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
			want := seqtreap.Union(ta, tb)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.Union(nil, RFromSeqTreap(r, ta), RFromSeqTreap(r, tb))
			return seqtreap.Equal(RToSeqTreap(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortT26BulkInsertMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%150)+1, int(m8%150)+1
			rng := workload.NewRNG(uint64(seed))
			all := workload.DistinctKeys(rng, n+m, 4*(n+m))
			base := t26.FromKeys(all[:n])
			ins := append([]int(nil), all[n:]...)
			sort.Ints(ins)
			levels := workload.WellSeparatedLevels(ins)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := RToSeqT26(cfg.T26BulkInsert(nil, RFromSeqT26(r, base), levels))
			if ok, _ := t26.Check(got); !ok {
				return false
			}
			want := append([]int{}, all...)
			sort.Ints(want)
			gotKeys := t26.Keys(got)
			if len(gotKeys) != len(want) {
				return false
			}
			for i := range want {
				if gotKeys[i] != want[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPortClassicAndPortAgree cross-checks the ported Merge against the
// classic goroutine implementation on the same inputs.
func TestPortClassicAndPortAgree(t *testing.T) {
	rng := workload.NewRNG(5)
	ka, kb := workload.DisjointKeySets(rng, 500, 700)
	sort.Ints(ka)
	sort.Ints(kb)
	t1 := seqtree.FromSortedBalanced(ka)
	t2 := seqtree.FromSortedBalanced(kb)
	classic := ToSeqTree(Config{SpawnDepth: 8}.Merge(FromSeqTree(t1), FromSeqTree(t2)))

	s := NewSchedRuntime(2)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 8}
	ported := RToSeqTree(cfg.Merge(nil, RFromSeqTree(s, t1), RFromSeqTree(s, t2)))
	if !seqtree.Equal(classic, ported) {
		t.Fatal("classic and ported Merge disagree")
	}
}

// TestPortSchedSuspensionsBalance checks the runtime's books after a
// pipelined union on the sched runtime: every suspended continuation
// must have been reactivated, and the pool must go quiescent.
func TestPortSchedSuspensionsBalance(t *testing.T) {
	s := NewSchedRuntime(4)
	defer s.Close()
	rng := workload.NewRNG(11)
	ka, kb := workload.OverlappingKeySets(rng, 3000, 3000, 0.25)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
	want := seqtreap.Union(ta, tb)

	cfg := RConfig{R: s, SpawnDepth: 32}
	got := cfg.Union(nil, RFromSeqTreap(s, ta), RFromSeqTreap(s, tb))
	if !seqtreap.Equal(RToSeqTreap(got), want) {
		t.Fatal("union mismatch")
	}
	s.RT.Wait()
	ctr := s.RT.Counters()
	if ctr.Suspensions != ctr.Reactivations {
		t.Fatalf("suspensions=%d reactivations=%d", ctr.Suspensions, ctr.Reactivations)
	}
	if ctr.Spawns == 0 {
		t.Fatal("no tasks spawned at SpawnDepth=32")
	}
}
