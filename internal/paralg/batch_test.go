package paralg

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

func TestPortDiffMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
			ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
			want := seqtreap.Diff(ta, tb)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.Diff(nil, RFromSeqTreap(r, ta), RFromSeqTreap(r, tb))
			return seqtreap.Equal(RToSeqTreap(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortIntersectMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
			ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
			want := seqtreap.Intersect(ta, tb)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.Intersect(nil, RFromSeqTreap(r, ta), RFromSeqTreap(r, tb))
			return seqtreap.Equal(RToSeqTreap(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortJoinMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.DisjointKeySets(rng, n, m)
			sort.Ints(ka)
			sort.Ints(kb)
			// Join requires every key of a below every key of b: shift kb.
			shift := ka[len(ka)-1] - kb[0] + 1
			for i := range kb {
				kb[i] += shift
			}
			ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
			want := seqtreap.Join(ta, tb)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.Join(nil, RFromSeqTreap(r, ta), RFromSeqTreap(r, tb))
			return seqtreap.Equal(RToSeqTreap(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortBuildTreapMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n16 uint16, cfgPick uint8) bool {
			n := int(n16%600) + 1
			rng := workload.NewRNG(uint64(seed))
			keys := workload.DistinctKeys(rng, n, 4*n)
			want := seqtreap.FromKeys(keys)

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			got := cfg.BuildTreap(nil, keys)
			return seqtreap.Equal(RToSeqTreap(got), want)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestPortInsertDeleteKeysMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, m8, cfgPick uint8) bool {
			n, m := int(n8%100)+1, int(m8%100)+1
			rng := workload.NewRNG(uint64(seed))
			ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
			ta := seqtreap.FromKeys(ka)
			wantIns := seqtreap.Union(ta, seqtreap.FromKeys(kb))
			wantDel := seqtreap.Diff(ta, seqtreap.FromKeys(kb))

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			gotIns := cfg.InsertKeys(nil, RFromSeqTreap(r, ta), kb)
			gotDel := cfg.DeleteKeys(nil, RFromSeqTreap(r, ta), kb)
			return seqtreap.Equal(RToSeqTreap(gotIns), wantIns) &&
				seqtreap.Equal(RToSeqTreap(gotDel), wantDel)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestRContainsRLen exercises the CPS queries against the map oracle,
// including queries racing a still-materializing pipelined union.
func TestRContainsRLen(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		rng := workload.NewRNG(7)
		ka, kb := workload.OverlappingKeySets(rng, 300, 300, 0.3)
		in := map[int]bool{}
		for _, k := range ka {
			in[k] = true
		}
		for _, k := range kb {
			in[k] = true
		}

		cfg := RConfig{R: r, SpawnDepth: 5}
		u := cfg.Union(nil, RFromSeqTreap(r, seqtreap.FromKeys(ka)), RFromSeqTreap(r, seqtreap.FromKeys(kb)))

		// Fire all queries before waiting: on the sched runtime many hit
		// unwritten cells and suspend as continuations.
		probes := append(append([]int(nil), ka[:50]...), -1, -2, 1<<40)
		results := make([]atomic.Int32, len(probes))
		var pendingQ atomic.Int64
		pendingQ.Store(int64(len(probes)) + 1)
		done := make(chan struct{})
		queryDone := func() {
			if pendingQ.Add(-1) == 0 {
				close(done)
			}
		}
		var gotLen atomic.Int64
		for i, key := range probes {
			i, key := i, key
			RContains(nil, u, key, func(_ Ctx, ok bool) {
				if ok {
					results[i].Store(1)
				} else {
					results[i].Store(-1)
				}
				queryDone()
			})
		}
		RLen(nil, u, func(_ Ctx, n int) {
			gotLen.Store(int64(n))
			queryDone()
		})
		RWait(u)
		<-done

		for i, key := range probes {
			want := int32(-1)
			if in[key] {
				want = 1
			}
			if got := results[i].Load(); got != want {
				t.Errorf("RContains(%d) = %d, want %d", key, got, want)
			}
		}
		if got, want := int(gotLen.Load()), len(in); got != want {
			t.Errorf("RLen = %d, want %d", got, want)
		}
	})
}
