package paralg

import (
	"fmt"
	"sort"

	"pipefut/internal/future"
	"pipefut/internal/t26"
)

// T26Node is a 2-6 tree node whose children are future cells — the
// Section 3.4 structure executed for real: the root of each insertion's
// result is written as soon as its key structure is decided, so the next
// well-separated key array starts descending while the previous one is
// still working its way down.
type T26Node struct {
	Keys []int
	Kids []*future.Cell[*T26Node] // nil for leaf
}

// T26 is a (possibly future) reference to a 2-6 tree.
type T26 = *future.Cell[*T26Node]

// IsLeaf reports whether n is a leaf.
func (n *T26Node) IsLeaf() bool { return len(n.Kids) == 0 }

// FromSeqT26 converts a sequential 2-6 tree into a materialized cell tree.
func FromSeqT26(t *t26.Node) T26 {
	n := &T26Node{Keys: append([]int(nil), t.Keys...)}
	for _, kid := range t.Kids {
		n.Kids = append(n.Kids, FromSeqT26(kid))
	}
	return future.Done(n)
}

// ToSeqT26 reads the whole tree back (blocking until complete).
func ToSeqT26(t T26) *t26.Node {
	n := t.Read()
	out := &t26.Node{Keys: append([]int(nil), n.Keys...)}
	for _, kid := range n.Kids {
		out.Kids = append(out.Kids, ToSeqT26(kid))
	}
	return out
}

// WaitT26 blocks until every cell of the tree is written.
func WaitT26(t T26) {
	n := t.Read()
	for _, kid := range n.Kids {
		WaitT26(kid)
	}
}

const t26SplitThreshold = 3

// T26Insert inserts one well-separated sorted key array and returns the
// new root immediately; children materialize concurrently.
func (c Config) T26Insert(tree T26, ws []int) T26 {
	body := func() *T26Node {
		n := tree.Read()
		if len(ws) == 0 {
			return n
		}
		if len(n.Keys) >= t26SplitThreshold {
			l, mid, r := splitT26Node(n)
			n = &T26Node{Keys: []int{mid}, Kids: []*future.Cell[*T26Node]{
				future.Done(l), future.Done(r),
			}}
		}
		return c.t26InsertBody(0, n, ws)
	}
	if c.SpawnDepth > 0 {
		return future.Spawn(body)
	}
	return future.Done(body())
}

func splitT26Node(n *T26Node) (l *T26Node, mid int, r *T26Node) {
	m := len(n.Keys) / 2
	mid = n.Keys[m]
	l = &T26Node{Keys: append([]int(nil), n.Keys[:m]...)}
	r = &T26Node{Keys: append([]int(nil), n.Keys[m+1:]...)}
	if !n.IsLeaf() {
		l.Kids = append([]*future.Cell[*T26Node](nil), n.Kids[:m+1]...)
		r.Kids = append([]*future.Cell[*T26Node](nil), n.Kids[m+1:]...)
	}
	return l, mid, r
}

func (c Config) t26InsertBody(d int, n *T26Node, ws []int) *T26Node {
	if n.IsLeaf() {
		merged := mergeUniqueKeys(n.Keys, ws)
		if len(merged) > t26.MaxKeys {
			panic(fmt.Sprintf("paralg: leaf would hold %d keys — insert array not well separated", len(merged)))
		}
		return &T26Node{Keys: merged}
	}
	parts := partitionKeys(ws, n.Keys)
	newKeys := append([]int(nil), n.Keys...)
	newKids := append([]*future.Cell[*T26Node](nil), n.Kids...)
	for i := len(parts) - 1; i >= 0; i-- {
		sub := parts[i]
		if len(sub) == 0 {
			continue
		}
		child := newKids[i].Read()
		if len(child.Keys) >= t26SplitThreshold {
			l, mid, r := splitT26Node(child)
			wl, wr := splitKeysAround(sub, mid)
			nl, nr := future.Done(l), future.Done(r)
			if len(wl) > 0 {
				nl = c.t26Recurse(d+1, l, wl)
			}
			if len(wr) > 0 {
				nr = c.t26Recurse(d+1, r, wr)
			}
			newKeys = insertKeyAt(newKeys, i, mid)
			newKids[i] = nl
			newKids = insertT26At(newKids, i+1, nr)
		} else {
			newKids[i] = c.t26Recurse(d+1, child, sub)
		}
	}
	if len(newKeys) > t26.MaxKeys {
		panic(fmt.Sprintf("paralg: node would hold %d keys — invariant violated", len(newKeys)))
	}
	return &T26Node{Keys: newKeys, Kids: newKids}
}

func (c Config) t26Recurse(d int, n *T26Node, ws []int) T26 {
	if c.spawn(d) {
		return future.Spawn(func() *T26Node { return c.t26InsertBody(d, n, ws) })
	}
	return future.Done(c.t26InsertBody(d, n, ws))
}

// T26BulkInsert pipelines the level arrays through the tree: each
// insertion starts as soon as the previous root cell is written.
func (c Config) T26BulkInsert(tree T26, levels [][]int) T26 {
	for _, lv := range levels {
		tree = c.T26Insert(tree, lv)
	}
	return tree
}

// --- sorted-array helpers (same semantics as the sequential oracle) ------

func partitionKeys(ws []int, keys []int) [][]int {
	out := make([][]int, 0, len(keys)+1)
	rest := ws
	for _, k := range keys {
		i := sort.SearchInts(rest, k)
		out = append(out, rest[:i])
		if i < len(rest) && rest[i] == k {
			i++
		}
		rest = rest[i:]
	}
	return append(out, rest)
}

func splitKeysAround(ws []int, k int) (lt, gt []int) {
	i := sort.SearchInts(ws, k)
	lt = ws[:i]
	if i < len(ws) && ws[i] == k {
		i++
	}
	return lt, ws[i:]
}

func insertKeyAt(xs []int, i, v int) []int {
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func insertT26At(xs []*future.Cell[*T26Node], i int, v *future.Cell[*T26Node]) []*future.Cell[*T26Node] {
	xs = append(xs, nil)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func mergeUniqueKeys(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
