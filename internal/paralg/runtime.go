package paralg

// This file defines the runtime-portable face of the package: a small
// Runtime interface that the pipelined algorithms in port.go are written
// against, so the same algorithm text runs either on the goroutine-per-
// future runtime of package future (GoRuntime, below) or on the explicit
// work-stealing scheduler of package sched (SchedRuntime, schedrt.go).
//
// The portable style is continuation-passing: where the classic Config
// methods call Cell.Read (blocking a goroutine), the RConfig ports call
// NodeCell.Touch(ctx, k), which on the sched runtime suspends only the
// continuation k — never a goroutine. The ctx value threads the current
// scheduling context (a *sched.Worker, or nil on the Go runtime) through
// every fork and touch, mirroring how costalg threads *core.Ctx.

import (
	"pipefut/internal/future"
	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
	"pipefut/internal/t26"
	"pipefut/internal/verdict"
)

// Ctx is the opaque per-task scheduling context. The Go runtime ignores
// it; the sched runtime passes the current *sched.Worker so forks and
// reactivations land on the local deque. Algorithm code only threads it.
type Ctx = any

// Runtime abstracts the futures machinery an algorithm needs: forking a
// task and creating one-shot cells for tree edges.
type Runtime interface {
	// Name identifies the runtime in benchmark output.
	Name() string
	// Fork schedules f as an independent task. ctx must be the value the
	// caller's own task received (or nil from outside the runtime).
	Fork(ctx Ctx, f func(Ctx))
	// NewNode returns a fresh unwritten tree-edge cell.
	NewNode() NodeCell
	// DoneNode returns a cell already holding n.
	DoneNode(n *RNode) NodeCell
	// NewT26 returns a fresh unwritten 2-6-tree-edge cell.
	NewT26() T26Cell
	// DoneT26 returns a cell already holding n.
	DoneT26(n *RT26Node) T26Cell
}

// NodeCell is a one-shot future holding a treap/BST node.
type NodeCell interface {
	// Write resolves the cell. Writing twice panics.
	Write(ctx Ctx, n *RNode)
	// Touch runs k(ctx', n) once the cell is written: immediately when it
	// already is, otherwise by suspending k until the write.
	Touch(ctx Ctx, k func(Ctx, *RNode))
	// Read blocks until the cell is written. Call it only from outside
	// the runtime's workers (tests, converters, benchmarks).
	Read() *RNode
}

// T26Cell is a one-shot future holding a 2-6 tree node.
type T26Cell interface {
	Write(ctx Ctx, n *RT26Node)
	Touch(ctx Ctx, k func(Ctx, *RT26Node))
	Read() *RT26Node
}

// RNode is the runtime-portable analogue of Node: a BST/treap node whose
// children are NodeCells. A cell holding nil is an empty subtree.
type RNode struct {
	Key   int
	Prio  int64
	Left  NodeCell
	Right NodeCell
}

// RT26Node is the runtime-portable analogue of T26Node.
type RT26Node struct {
	Keys []int
	Kids []T26Cell // nil for leaf
}

// IsLeaf reports whether n is a leaf.
func (n *RT26Node) IsLeaf() bool { return len(n.Kids) == 0 }

// RConfig pairs a Runtime with the granularity knob, mirroring Config.
type RConfig struct {
	R Runtime
	// SpawnDepth bounds parallel recursion exactly as Config.SpawnDepth:
	// forks at recursion depth < SpawnDepth become runtime tasks, deeper
	// ones run inline in the caller.
	SpawnDepth int
	// Discipline declares how the caller consumes the produced cell
	// trees; the zero value (SharedCells) disables cell specialization.
	// See variants.go.
	Discipline CellDiscipline
	// GrainCutoff coarsens below-cutoff subtrees into chunk cells (see
	// grain.go): subtrees of at most GrainCutoff nodes are built and
	// combined by the plain sequential seqtreap code behind a single
	// born-written cell, instead of one scheduler cell per node. The
	// zero value disables coarsening. The knob is honored ONLY for
	// entry points whose sequential twins carry the manifest's seqsafe
	// proof (verdict.SeqSafeOf); other entries ignore it, failing
	// closed to the fully pipelined path.
	GrainCutoff int
	// class is the verdict-manifest flow class of the entry point this
	// config copy is serving, stamped by classed.
	class verdict.Class
	// vr is non-nil when class, Discipline, and the runtime all permit
	// specialized cells; resolved once in classed.
	vr VariantRuntime
	// cutoff is GrainCutoff after the seqsafe gate: non-zero only when
	// the entry point's sequential twins are proven cell-free, resolved
	// once in classed.
	cutoff int
}

// fork runs f as a task when the depth is above the grain, else inline.
func (c RConfig) fork(ctx Ctx, d int, f func(Ctx)) {
	if d < c.SpawnDepth {
		c.R.Fork(ctx, f)
		return
	}
	f(ctx)
}

// --- converters -----------------------------------------------------------

// RFromSeqTree converts a sequential BST into a materialized cell tree.
func RFromSeqTree(r Runtime, t *seqtree.Node) NodeCell {
	if t == nil {
		return r.DoneNode(nil)
	}
	return r.DoneNode(&RNode{Key: t.Key, Left: RFromSeqTree(r, t.Left), Right: RFromSeqTree(r, t.Right)})
}

// RFromSeqTreap converts a sequential treap into a materialized cell tree.
func RFromSeqTreap(r Runtime, t *seqtreap.Node) NodeCell {
	if t == nil {
		return r.DoneNode(nil)
	}
	return r.DoneNode(&RNode{Key: t.Key, Prio: t.Prio, Left: RFromSeqTreap(r, t.Left), Right: RFromSeqTreap(r, t.Right)})
}

// RToSeqTree reads the whole tree (blocking until complete) back into a
// sequential BST. External callers only.
func RToSeqTree(t NodeCell) *seqtree.Node {
	n := t.Read()
	if n == nil {
		return nil
	}
	return &seqtree.Node{Key: n.Key, Left: RToSeqTree(n.Left), Right: RToSeqTree(n.Right)}
}

// RToSeqTreap reads the whole tree back into a sequential treap.
func RToSeqTreap(t NodeCell) *seqtreap.Node {
	n := t.Read()
	if n == nil {
		return nil
	}
	return &seqtreap.Node{Key: n.Key, Prio: n.Prio, Left: RToSeqTreap(n.Left), Right: RToSeqTreap(n.Right)}
}

// RWait blocks until every cell of the tree is written — the barrier the
// benchmarks time. External callers only.
func RWait(t NodeCell) {
	n := t.Read()
	if n == nil {
		return
	}
	RWait(n.Left)
	RWait(n.Right)
}

// RFromSeqT26 converts a sequential 2-6 tree into a materialized cell tree.
func RFromSeqT26(r Runtime, t *t26.Node) T26Cell {
	n := &RT26Node{Keys: append([]int(nil), t.Keys...)}
	for _, kid := range t.Kids {
		n.Kids = append(n.Kids, RFromSeqT26(r, kid))
	}
	return r.DoneT26(n)
}

// RToSeqT26 reads the whole tree back (blocking until complete).
func RToSeqT26(t T26Cell) *t26.Node {
	n := t.Read()
	out := &t26.Node{Keys: append([]int(nil), n.Keys...)}
	for _, kid := range n.Kids {
		out.Kids = append(out.Kids, RToSeqT26(kid))
	}
	return out
}

// RWaitT26 blocks until every cell of the tree is written.
func RWaitT26(t T26Cell) {
	n := t.Read()
	for _, kid := range n.Kids {
		RWaitT26(kid)
	}
}

// --- GoRuntime ------------------------------------------------------------

// GoRuntime runs forks as goroutines and cells as future.Cell — the
// classic runtime of this package behind the portable interface. Touch
// blocks the calling goroutine on Read, so suspension costs a goroutine;
// that is exactly the cost the sched runtime removes.
type GoRuntime struct{}

// Name implements Runtime.
func (GoRuntime) Name() string { return "go" }

// Fork implements Runtime.
func (GoRuntime) Fork(_ Ctx, f func(Ctx)) { go f(nil) }

// NewNode implements Runtime.
func (GoRuntime) NewNode() NodeCell { return goNodeCell{future.New[*RNode]()} }

// DoneNode implements Runtime.
func (GoRuntime) DoneNode(n *RNode) NodeCell { return goNodeCell{future.Done(n)} }

// NewT26 implements Runtime.
func (GoRuntime) NewT26() T26Cell { return goT26Cell{future.New[*RT26Node]()} }

// DoneT26 implements Runtime.
func (GoRuntime) DoneT26(n *RT26Node) T26Cell { return goT26Cell{future.Done(n)} }

type goNodeCell struct{ c *future.Cell[*RNode] }

func (g goNodeCell) Write(_ Ctx, n *RNode)              { g.c.Write(n) }
func (g goNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) { k(ctx, g.c.Read()) }
func (g goNodeCell) Read() *RNode                       { return g.c.Read() }

type goT26Cell struct{ c *future.Cell[*RT26Node] }

func (g goT26Cell) Write(_ Ctx, n *RT26Node)              { g.c.Write(n) }
func (g goT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) { k(ctx, g.c.Read()) }
func (g goT26Cell) Read() *RT26Node                       { return g.c.Read() }
