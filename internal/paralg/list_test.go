package paralg

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/workload"
)

func TestListRoundTrip(t *testing.T) {
	xs := []int{4, 2, 7}
	got := ToSlice(FromSlice(xs))
	if len(got) != 3 || got[0] != 4 || got[2] != 7 {
		t.Fatalf("roundtrip = %v", got)
	}
	if ToSlice(FromSlice(nil)) != nil {
		t.Fatal("empty wrong")
	}
}

func TestProduceConsume(t *testing.T) {
	for _, chunk := range []int{1, 7, 1000} {
		if got := Consume(Produce(1000, chunk)); got != 500500 {
			t.Fatalf("chunk %d: sum = %d", chunk, got)
		}
	}
	if Consume(Produce(-1, 4)) != 0 {
		t.Fatal("empty production must sum to 0")
	}
}

func TestQuicksortSortsProperty(t *testing.T) {
	f := func(seed uint16, n8, cfgPick uint8) bool {
		n := int(n8 % 200)
		rng := workload.NewRNG(uint64(seed))
		xs := rng.Perm(n)
		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := ToSlice(cfg.Quicksort(FromSlice(xs), FromSlice(nil)))
		if len(got) != n {
			return false
		}
		return sort.IntsAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuicksortConsumesStreamingInput(t *testing.T) {
	// Sort a list that is still being produced: the pipeline composes.
	l := Produce(2000, 16) // 2000, 1999, ..., 0 (reverse sorted)
	got := ToSlice(Config{SpawnDepth: 8}.Quicksort(l, FromSlice(nil)))
	if len(got) != 2001 {
		t.Fatalf("len = %d", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("not sorted")
	}
}

func TestQuicksortDuplicates(t *testing.T) {
	xs := []int{2, 2, 1, 2, 0}
	got := ToSlice(DefaultConfig.Quicksort(FromSlice(xs), FromSlice(nil)))
	want := append([]int{}, xs...)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}
