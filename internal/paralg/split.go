package paralg

// Range-splitting entry points on RConfig — the routing primitive of the
// sharded serving layer (internal/serve). A router that partitions the
// key space across independent shard roots needs to cut one mutation's
// operand treap at the shard boundaries; these entry points do that cut
// as pipelined splits, so the per-shard pieces are available as cells
// immediately and materialize concurrently while each shard's own
// pipeline is already consuming them.

// Split divides treap t into the keys < pivot and the keys ≥ pivot. Both
// result cells return immediately and materialize concurrently (the
// rsplit of Figure 12 in CPS form); t may itself still be under
// construction. ctx follows the Fork contract.
func (c RConfig) Split(ctx Ctx, t NodeCell, pivot int) (lt, ge NodeCell) {
	c = c.classed("paralg.RConfig.Split")
	return c.rsplit(ctx, 0, pivot, t)
}

// SplitRanges splits t at every pivot of the ascending pivots slice,
// returning len(pivots)+1 treaps: piece 0 holds the keys below
// pivots[0], piece i the keys in [pivots[i-1], pivots[i]), and the last
// piece the keys from pivots[len-1] up. The splits chain left to right —
// each split consumes the ≥-side cell of the previous one while that
// side is still materializing — so the whole partition is one pipeline,
// not len(pivots) barriers. With no pivots the result is just {t}.
func (c RConfig) SplitRanges(ctx Ctx, t NodeCell, pivots []int) []NodeCell {
	c = c.classed("paralg.RConfig.SplitRanges")
	out := make([]NodeCell, 0, len(pivots)+1)
	rest := t
	for i, p := range pivots {
		if i > 0 && pivots[i-1] > p {
			panic("paralg: SplitRanges pivots not ascending")
		}
		lt, ge := c.rsplit(ctx, 0, p, rest)
		out = append(out, lt)
		rest = ge
	}
	return append(out, rest)
}
