// Package paralg runs the paper's algorithms for real, on goroutines, using
// the futures of package future: every tree edge is a one-shot cell, so
// partially built trees flow between pipeline stages exactly as in the cost
// model, and Go's work-stealing scheduler plays the runtime of Section 4.
//
// Unbounded forking would drown the asymptotics in goroutine overhead, so
// every algorithm takes a Config with a SpawnDepth: future calls above that
// recursion depth start goroutines, deeper calls run synchronously in the
// caller (with identical code shape — see future.Call2/Call3). SpawnDepth
// is the grain-size ablation knob of the A-GRAIN experiment.
package paralg

import (
	"pipefut/internal/future"
	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
)

// Node is a binary-search-tree / treap node whose children are future
// cells. A cell holding nil is an empty subtree.
type Node struct {
	Key   int
	Prio  int64
	Left  *future.Cell[*Node]
	Right *future.Cell[*Node]
}

// Tree is a (possibly future) reference to a tree.
type Tree = *future.Cell[*Node]

// Config controls granularity.
type Config struct {
	// SpawnDepth bounds parallel recursion: future calls at recursion
	// depth < SpawnDepth spawn goroutines, deeper ones run inline.
	// 0 makes every algorithm fully sequential; 64 is effectively
	// unbounded for laptop-scale inputs.
	SpawnDepth int
}

// DefaultConfig spawns down to recursion depth 14 (≈16k-way parallelism at
// the frontier), a good default for the benchmarks in this repository.
var DefaultConfig = Config{SpawnDepth: 14}

func (c Config) spawn(depth int) bool { return depth < c.SpawnDepth }

// FromSeqTree converts a sequential BST into a materialized cell tree.
func FromSeqTree(t *seqtree.Node) Tree {
	if t == nil {
		return future.Done[*Node](nil)
	}
	return future.Done(&Node{Key: t.Key, Left: FromSeqTree(t.Left), Right: FromSeqTree(t.Right)})
}

// FromSeqTreap converts a sequential treap into a materialized cell tree.
func FromSeqTreap(t *seqtreap.Node) Tree {
	if t == nil {
		return future.Done[*Node](nil)
	}
	return future.Done(&Node{Key: t.Key, Prio: t.Prio, Left: FromSeqTreap(t.Left), Right: FromSeqTreap(t.Right)})
}

// ToSeqTree reads the whole tree (blocking until complete) back into a
// sequential BST.
func ToSeqTree(t Tree) *seqtree.Node {
	n := t.Read()
	if n == nil {
		return nil
	}
	return &seqtree.Node{Key: n.Key, Left: ToSeqTree(n.Left), Right: ToSeqTree(n.Right)}
}

// ToSeqTreap reads the whole tree back into a sequential treap.
func ToSeqTreap(t Tree) *seqtreap.Node {
	n := t.Read()
	if n == nil {
		return nil
	}
	return &seqtreap.Node{Key: n.Key, Prio: n.Prio, Left: ToSeqTreap(n.Left), Right: ToSeqTreap(n.Right)}
}

// Wait blocks until every cell of the tree is written — the "computation
// finished" barrier the benchmarks time.
func Wait(t Tree) {
	n := t.Read()
	if n == nil {
		return
	}
	Wait(n.Left)
	Wait(n.Right)
}

// Merge merges two binary search trees with disjoint key sets (the
// pipelined algorithm of Section 3.1) and returns the result tree
// immediately; its nodes materialize concurrently.
func (c Config) Merge(a, b Tree) Tree {
	return c.merge(0, a, b)
}

func (c Config) merge(d int, a, b Tree) Tree {
	body := func() *Node {
		n1 := a.Read()
		if n1 == nil {
			return b.Read()
		}
		l2, r2 := c.split(d, n1.Key, b)
		return &Node{
			Key:   n1.Key,
			Prio:  n1.Prio,
			Left:  c.merge(d+1, n1.Left, l2),
			Right: c.merge(d+1, n1.Right, r2),
		}
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

// split divides tree by s into keys < s and keys ≥ s with independently
// written result cells, exactly as Figure 12.
func (c Config) split(d int, s int, tree Tree) (lt, ge Tree) {
	body := func(lo, ro *future.Cell[*Node]) {
		n := tree.Read()
		if n == nil {
			lo.Write(nil)
			ro.Write(nil)
			return
		}
		if s <= n.Key {
			l1, r1 := c.split(d+1, s, n.Left)
			ro.Write(&Node{Key: n.Key, Prio: n.Prio, Left: r1, Right: n.Right})
			lo.Write(l1.Read())
		} else {
			l1, r1 := c.split(d+1, s, n.Right)
			lo.Write(&Node{Key: n.Key, Prio: n.Prio, Left: n.Left, Right: l1})
			ro.Write(r1.Read())
		}
	}
	if c.spawn(d) {
		return future.Spawn2(body)
	}
	return future.Call2(body)
}

// Union returns the union of two treaps, discarding duplicates (the
// pipelined algorithm of Section 3.2).
func (c Config) Union(a, b Tree) Tree { return c.union(0, a, b) }

func (c Config) union(d int, a, b Tree) Tree {
	body := func() *Node {
		n1 := a.Read()
		if n1 == nil {
			return b.Read()
		}
		n2 := b.Read()
		if n2 == nil {
			return n1
		}
		hi, lo := n1, n2
		if hi.Prio < lo.Prio {
			hi, lo = lo, hi
		}
		l2, r2, _ := c.splitM(d, hi.Key, lo)
		return &Node{
			Key:   hi.Key,
			Prio:  hi.Prio,
			Left:  c.union(d+1, hi.Left, l2),
			Right: c.union(d+1, hi.Right, r2),
		}
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

// splitM splits the treap rooted at the already-read node around s,
// excluding and reporting s itself if present.
func (c Config) splitM(d int, s int, n *Node) (lt, gt, dup Tree) {
	body := func(lo, ro, do *future.Cell[*Node]) {
		c.splitMBody(d, s, n, lo, ro, do)
	}
	if c.spawn(d) {
		return future.Spawn3(body)
	}
	return future.Call3(body)
}

func (c Config) splitMBody(d int, s int, n *Node, lo, ro, do *future.Cell[*Node]) {
	if n == nil {
		lo.Write(nil)
		ro.Write(nil)
		do.Write(nil)
		return
	}
	switch {
	case s == n.Key:
		do.Write(n)
		lo.Write(n.Left.Read())
		ro.Write(n.Right.Read())
	case s < n.Key:
		l1, r1, d1 := c.splitMCell(d+1, s, n.Left)
		ro.Write(&Node{Key: n.Key, Prio: n.Prio, Left: r1, Right: n.Right})
		do.Write(d1.Read())
		lo.Write(l1.Read())
	default:
		l1, r1, d1 := c.splitMCell(d+1, s, n.Right)
		lo.Write(&Node{Key: n.Key, Prio: n.Prio, Left: n.Left, Right: l1})
		do.Write(d1.Read())
		ro.Write(r1.Read())
	}
}

func (c Config) splitMCell(d int, s int, tree Tree) (lt, gt, dup Tree) {
	body := func(lo, ro, do *future.Cell[*Node]) {
		c.splitMBody(d, s, tree.Read(), lo, ro, do)
	}
	if c.spawn(d) {
		return future.Spawn3(body)
	}
	return future.Call3(body)
}

// Diff returns treap a with every key of treap b removed (the pipelined
// algorithm of Section 3.3).
func (c Config) Diff(a, b Tree) Tree { return c.diff(0, a, b) }

func (c Config) diff(d int, a, b Tree) Tree {
	body := func() *Node {
		n1 := a.Read()
		if n1 == nil {
			return nil
		}
		n2 := b.Read()
		if n2 == nil {
			return n1
		}
		l2, r2, dup := c.splitM(d, n1.Key, n2)
		l := c.diff(d+1, n1.Left, l2)
		r := c.diff(d+1, n1.Right, r2)
		if dup.Read() == nil {
			return &Node{Key: n1.Key, Prio: n1.Prio, Left: l, Right: r}
		}
		return c.joinCells(d, l, r)
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}

// Join joins two treaps where every key of a precedes every key of b.
func (c Config) Join(a, b Tree) Tree {
	return future.Spawn(func() *Node { return c.joinCells(0, a, b) })
}

func (c Config) joinCells(d int, a, b Tree) *Node {
	na := a.Read()
	if na == nil {
		return b.Read()
	}
	nb := b.Read()
	if nb == nil {
		return na
	}
	return c.joinNodes(d, na, nb)
}

func (c Config) joinNodes(d int, na, nb *Node) *Node {
	if na.Prio > nb.Prio {
		body := func() *Node {
			r := na.Right.Read()
			if r == nil {
				return nb
			}
			return c.joinNodes(d+1, r, nb)
		}
		var right Tree
		if c.spawn(d) {
			right = future.Spawn(body)
		} else {
			right = future.Done(body())
		}
		return &Node{Key: na.Key, Prio: na.Prio, Left: na.Left, Right: right}
	}
	body := func() *Node {
		l := nb.Left.Read()
		if l == nil {
			return na
		}
		return c.joinNodes(d+1, na, l)
	}
	var left Tree
	if c.spawn(d) {
		left = future.Spawn(body)
	} else {
		left = future.Done(body())
	}
	return &Node{Key: nb.Key, Prio: nb.Prio, Left: left, Right: nb.Right}
}

// Mergesort sorts xs into a binary search tree using futures and the
// pipelined Merge — the Section 5 conjecture, executed for real.
func (c Config) Mergesort(xs []int) Tree {
	return c.msort(0, xs)
}

func (c Config) msort(d int, xs []int) Tree {
	switch len(xs) {
	case 0:
		return future.Done[*Node](nil)
	case 1:
		return future.Done(&Node{
			Key:  xs[0],
			Left: future.Done[*Node](nil), Right: future.Done[*Node](nil),
		})
	}
	body := func() *Node {
		a := c.msort(d+1, xs[:len(xs)/2])
		b := c.msort(d+1, xs[len(xs)/2:])
		return c.merge(d+1, a, b).Read()
	}
	if c.spawn(d) {
		return future.Spawn(body)
	}
	return future.Done(body())
}
