package paralg

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/t26"
	"pipefut/internal/workload"
)

func TestT26BulkInsertMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, cfgPick uint8) bool {
		n, m := int(n8%150)+1, int(m8%150)+1
		rng := workload.NewRNG(uint64(seed))
		all := workload.DistinctKeys(rng, n+m, 4*(n+m))
		base := t26.FromKeys(all[:n])
		ins := append([]int(nil), all[n:]...)
		sort.Ints(ins)
		levels := workload.WellSeparatedLevels(ins)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := ToSeqT26(cfg.T26BulkInsert(FromSeqT26(base), levels))
		if ok, _ := t26.Check(got); !ok {
			return false
		}
		want := append([]int{}, all...)
		sort.Ints(want)
		gotKeys := t26.Keys(got)
		if len(gotKeys) != len(want) {
			return false
		}
		for i := range want {
			if gotKeys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestT26PipelinedWavesOverlapSafely(t *testing.T) {
	// Larger run with full spawning: many waves in flight at once.
	rng := workload.NewRNG(9)
	all := workload.DistinctKeys(rng, 20000, 1<<20)
	base := t26.FromKeys(all[:10000])
	ins := append([]int(nil), all[10000:]...)
	sort.Ints(ins)
	cfg := Config{SpawnDepth: 32}
	got := cfg.T26BulkInsert(FromSeqT26(base), workload.WellSeparatedLevels(ins))
	WaitT26(got)
	res := ToSeqT26(got)
	if ok, why := t26.Check(res); !ok {
		t.Fatal(why)
	}
	if t26.Size(res) != 20000 {
		t.Fatalf("size = %d", t26.Size(res))
	}
}

func TestT26InsertEmptyArray(t *testing.T) {
	base := t26.FromKeys([]int{1, 2, 3})
	got := DefaultConfig.T26Insert(FromSeqT26(base), nil)
	if t26.Size(ToSeqT26(got)) != 3 {
		t.Fatal("no-op insert changed the tree")
	}
}

func TestIntersectMatchesOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, cfgPick uint8) bool {
		n, m := int(n8%100)+1, int(m8%100)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.OverlappingKeySets(rng, n, m, float64(cfgPick%4)/4)
		ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
		want := seqtreap.Intersect(ta, tb)

		cfg := testCfgs[int(cfgPick)%len(testCfgs)]
		got := cfg.Intersect(FromSeqTreap(ta), FromSeqTreap(tb))
		return seqtreap.Equal(ToSeqTreap(got), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
