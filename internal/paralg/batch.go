package paralg

// Batch entry points on RConfig — the runtime-portable twins of build.go
// — plus the CPS query walks the serving layer (internal/serve) runs as
// scheduler tasks. Everything here follows the port.go discipline: no
// call ever blocks a goroutine; waiting is always a Touch that suspends
// only a continuation.

import (
	"sync/atomic"

	"pipefut/internal/seqtreap"
)

// BuildTreap builds a treap over the keys by divide-and-conquer pipelined
// unions on runtime c.R. The root cell becomes available while most of
// the tree is still under construction, so queries and further set
// operations can start immediately. ctx follows the Fork contract.
func (c RConfig) BuildTreap(ctx Ctx, keys []int) NodeCell {
	c = c.classed("paralg.RConfig.BuildTreap")
	return c.rbuildTreap(ctx, 0, keys)
}

func (c RConfig) rbuildTreap(ctx Ctx, d int, keys []int) NodeCell {
	if len(keys) <= 64 || d >= c.SpawnDepth {
		// Small or below the grain bound: build directly. With grain
		// coarsening on, the whole sequential subtree rides behind one
		// chunk cell — zero scheduler cells instead of one per node —
		// and decomposes lazily only if a pipelined consumer needs it.
		t := seqtreap.FromKeys(keys)
		if c.cutoff > 0 {
			return chunkCell(t)
		}
		return RFromSeqTreap(c.R, t)
	}
	half := len(keys) / 2
	a := c.newNode()
	c.fork(ctx, d, func(ctx Ctx) { c.rbuildTreap(ctx, d+1, keys[:half]).Touch(ctx, a.Write) })
	b := c.rbuildTreap(ctx, d+1, keys[half:])
	out := c.newNode()
	c.unionInto(ctx, d, a, b, out)
	return out
}

// InsertKeys returns the treap with all keys added, as one pipelined
// union — the batch entry the serving layer coalesces insert requests
// into.
func (c RConfig) InsertKeys(ctx Ctx, tree NodeCell, keys []int) NodeCell {
	c = c.classed("paralg.RConfig.InsertKeys")
	out := c.newNode()
	c.unionInto(ctx, 0, tree, c.BuildTreap(ctx, keys), out)
	return out
}

// DeleteKeys returns the treap with all keys removed, as one pipelined
// difference.
func (c RConfig) DeleteKeys(ctx Ctx, tree NodeCell, keys []int) NodeCell {
	c = c.classed("paralg.RConfig.DeleteKeys")
	return c.Diff(ctx, tree, c.BuildTreap(ctx, keys))
}

// RContains walks the search path by touches and calls k with the
// membership verdict. It blocks only on cells along the path, and never
// blocks a goroutine: on the sched runtime an unwritten edge suspends
// the rest of the walk as a continuation.
func RContains(ctx Ctx, t NodeCell, key int, k func(Ctx, bool)) {
	t.Touch(ctx, func(ctx Ctx, n *RNode) {
		switch {
		case n == nil:
			k(ctx, false)
		case key == n.Key:
			k(ctx, true)
		case key < n.Key:
			RContains(ctx, n.Left, key, k)
		default:
			RContains(ctx, n.Right, key, k)
		}
	})
}

// RLen counts the tree's keys and calls k once with the total. The walk
// descends both children of every node with an atomic open-walk
// countdown, so continuation nesting stays O(tree height) and subtrees
// count concurrently as they materialize; whichever walk resolves last
// (on whatever scheduling context it resolves in) delivers the total.
func RLen(ctx Ctx, t NodeCell, k func(Ctx, int)) {
	st := &rlenState{k: k}
	st.open.Store(1)
	st.walk(ctx, t)
}

type rlenState struct {
	total atomic.Int64
	open  atomic.Int64 // walks started and not yet resolved at a nil edge
	k     func(Ctx, int)
}

func (st *rlenState) walk(ctx Ctx, t NodeCell) {
	t.Touch(ctx, func(ctx Ctx, n *RNode) {
		if n == nil {
			if st.open.Add(-1) == 0 {
				st.k(ctx, int(st.total.Load()))
			}
			return
		}
		st.total.Add(1)
		st.open.Add(1) // two child walks replace this one: net +1 open
		st.walk(ctx, n.Left)
		st.walk(ctx, n.Right)
	})
}
