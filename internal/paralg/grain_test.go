package paralg

import (
	"strings"
	"testing"

	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

// TestGrainCutoffMatchesOracle sweeps GrainCutoff over both runtimes
// and checks every coarsened entry point against the sequential
// seqtreap oracle. Cutoff 1 keeps the fast paths almost always cold
// (only empty and singleton chunks qualify), so the mixed pipelined ×
// chunk paths — touches expanding chunks one level at a time — carry
// the work; cutoff 64 swallows whole operand trees sequentially.
func TestGrainCutoffMatchesOracle(t *testing.T) {
	rng := workload.NewRNG(23)
	all := workload.DistinctKeys(rng, 900, 1<<14)
	ka, kb := all[:500], all[300:] // 200 shared keys

	wantA := seqtreap.FromKeys(ka)
	wantB := seqtreap.FromKeys(kb)

	for _, cutoff := range []int{1, 8, 64} {
		for _, rt := range []string{"go", "sched"} {
			t.Run(rt, func(t *testing.T) {
				var r Runtime = GoRuntime{}
				if rt == "sched" {
					s := NewSchedRuntime(4)
					defer s.Close()
					r = s
				}
				cfg := RConfig{R: r, SpawnDepth: 4, GrainCutoff: cutoff}

				ta := cfg.BuildTreap(nil, ka)
				tb := cfg.BuildTreap(nil, kb)
				if !seqtreap.Equal(RToSeqTreap(ta), wantA) {
					t.Fatalf("cutoff=%d: BuildTreap disagrees with the oracle", cutoff)
				}

				check := func(name string, got NodeCell, want *seqtreap.Node) {
					t.Helper()
					if !seqtreap.Equal(RToSeqTreap(got), want) {
						t.Errorf("cutoff=%d: %s disagrees with the sequential oracle", cutoff, name)
					}
				}
				check("Union", cfg.Union(nil, ta, tb), seqtreap.Union(wantA, wantB))
				check("Diff", cfg.Diff(nil, ta, tb), seqtreap.Diff(wantA, wantB))
				check("Intersect", cfg.Intersect(nil, ta, tb), seqtreap.Intersect(wantA, wantB))
				check("InsertKeys", cfg.InsertKeys(nil, ta, kb), seqtreap.Union(wantA, wantB))
				check("DeleteKeys", cfg.DeleteKeys(nil, ta, kb[:100]),
					seqtreap.Diff(wantA, seqtreap.FromKeys(kb[:100])))

				// Split pieces of a treap are treaps over the same
				// priorities, so the piece shapes are FromKeys shapes.
				pivot := all[450]
				var lo, hi []int
				for _, k := range ka {
					if k < pivot {
						lo = append(lo, k)
					} else {
						hi = append(hi, k)
					}
				}
				lt, ge := cfg.Split(nil, ta, pivot)
				check("Split(<)", lt, seqtreap.FromKeys(lo))
				check("Split(>=)", ge, seqtreap.FromKeys(hi))

				pieces := cfg.SplitRanges(nil, ta, []int{all[200], all[450], all[700]})
				if len(pieces) != 4 {
					t.Fatalf("cutoff=%d: SplitRanges returned %d pieces, want 4", cutoff, len(pieces))
				}
				total := 0
				for _, p := range pieces {
					total += seqtreap.Size(RToSeqTreap(p))
				}
				if total != len(ka) {
					t.Errorf("cutoff=%d: SplitRanges pieces hold %d keys, want %d", cutoff, total, len(ka))
				}
			})
		}
	}
}

// TestGrainCutoffMergeAndJoin covers the two entry points whose output
// shape is algorithm-determined rather than priority-determined: the
// coarsened run must be node-for-node the shape the pipelined (cutoff
// 0) run builds, which is exactly the claim behind chunkMerge and
// chunkSplitGE mirroring mergeInto and rsplit.
func TestGrainCutoffMergeAndJoin(t *testing.T) {
	rng := workload.NewRNG(29)
	ka, kb := workload.DisjointKeySets(rng, 300, 250)

	base := RConfig{R: GoRuntime{}, SpawnDepth: 4}
	wantMerge := RToSeqTreap(base.Merge(nil,
		RFromSeqTreap(base.R, seqtreap.FromKeys(ka)), RFromSeqTreap(base.R, seqtreap.FromKeys(kb))))
	wantJoin := seqtreap.Join(seqtreap.FromKeys(ka), seqtreap.FromKeys(kb))

	for _, cutoff := range []int{1, 8, 64} {
		s := NewSchedRuntime(4)
		cfg := RConfig{R: s, SpawnDepth: 4, GrainCutoff: cutoff}
		ta := cfg.BuildTreap(nil, ka)
		tb := cfg.BuildTreap(nil, kb)
		if got := RToSeqTreap(cfg.Merge(nil, ta, tb)); !seqtreap.Equal(got, wantMerge) {
			t.Errorf("cutoff=%d: Merge shape differs from the pipelined run", cutoff)
		}
		if got := RToSeqTreap(cfg.Join(nil, ta, tb)); !seqtreap.Equal(got, wantJoin) {
			t.Errorf("cutoff=%d: Join disagrees with the sequential oracle", cutoff)
		}
		s.Close()
	}
}

// TestGrainCutoffZeroCellsBelowCutoff is the headline counter claim: a
// below-cutoff build allocates NO scheduler cells at all, and a union
// of two below-cutoff chunks allocates exactly one — the frontier cell
// the entry point hands back.
func TestGrainCutoffZeroCellsBelowCutoff(t *testing.T) {
	s := NewSchedRuntime(2)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 6, GrainCutoff: 64}
	rng := workload.NewRNG(31)
	all := workload.DistinctKeys(rng, 96, 1<<12)

	before := s.RT.Counters()
	ta := cfg.BuildTreap(nil, all[:48])
	tb := cfg.BuildTreap(nil, all[48:])
	d := s.RT.Counters().Sub(before)
	if n := d.CellsShared + d.CellsLinear + d.CellsForwarded; n != 0 {
		t.Fatalf("below-cutoff builds allocated %d cells, want 0", n)
	}
	if _, ok := ta.(chunkNodeCell); !ok {
		t.Fatalf("below-cutoff BuildTreap returned %T, want a chunk cell", ta)
	}

	before = s.RT.Counters()
	out := cfg.Union(nil, ta, tb)
	RWait(out)
	d = s.RT.Counters().Sub(before)
	if n := d.CellsShared + d.CellsLinear + d.CellsForwarded; n != 1 {
		t.Errorf("below-cutoff union allocated %d cells, want exactly the frontier cell", n)
	}
	if !seqtreap.Equal(RToSeqTreap(out), seqtreap.FromKeys(all)) {
		t.Error("below-cutoff union disagrees with the oracle")
	}
}

// TestGrainCutoffFailClosed pins the manifest gate: the knob activates
// only for entry points carrying the seqsafe proof; everything else —
// including entries the manifest has never heard of — keeps cutoff 0.
func TestGrainCutoffFailClosed(t *testing.T) {
	base := RConfig{R: GoRuntime{}, GrainCutoff: 32}
	if got := base.classed("paralg.RConfig.Union").cutoff; got != 32 {
		t.Errorf("Union (seqsafe-proven) resolved cutoff %d, want 32", got)
	}
	if got := base.classed("paralg.RConfig.T26Insert").cutoff; got != 0 {
		t.Errorf("T26Insert (no seqsafe verdict) resolved cutoff %d, want 0 (fail closed)", got)
	}
	if got := base.classed("paralg.RConfig.NoSuchEntry").cutoff; got != 0 {
		t.Errorf("unknown entry resolved cutoff %d, want 0 (fail closed)", got)
	}
	if got := base.classed("paralg.RConfig.Union").GrainCutoff; got != 32 {
		t.Errorf("classed mutated the public knob: %d", got)
	}
}

// TestChunkCellSemantics pins the chunk cell contract: born written,
// inline touches, memoized expansion, panic on write.
func TestChunkCellSemantics(t *testing.T) {
	if n := chunkCell(nil).Read(); n != nil {
		t.Errorf("empty chunk reads %v, want nil", n)
	}

	tr := seqtreap.FromKeys([]int{1, 2, 3})
	c := chunkCell(tr)
	var first, second *RNode
	c.Touch(nil, func(_ Ctx, n *RNode) { first = n })
	c.Touch(nil, func(_ Ctx, n *RNode) { second = n })
	if first == nil || first != second {
		t.Error("chunk expansion is not memoized: repeated touches saw different nodes")
	}
	if first.Key != tr.Key || first.Prio != tr.Prio {
		t.Error("expanded chunk root does not mirror the wrapped node")
	}

	defer func() {
		if r := recover(); r == nil || !strings.Contains(r.(string), "born written") {
			t.Errorf("write of a chunk cell: recovered %v, want born-written panic", r)
		}
	}()
	c.Write(nil, nil)
}
