package paralg

// SchedRuntime adapts the explicit work-stealing scheduler of package
// sched to the portable Runtime interface. The Ctx threaded through the
// algorithms is the current *sched.Worker (nil when entering from outside
// the pool), so every fork lands on the forking worker's own deque and
// every touch of an unwritten cell suspends just the continuation.

import "pipefut/internal/sched"

// SchedRuntime wraps a sched.Runtime. Create one with NewSchedRuntime and
// release its workers with Close when done.
type SchedRuntime struct {
	RT *sched.Runtime
}

// NewSchedRuntime starts a scheduler with p workers.
func NewSchedRuntime(p int) *SchedRuntime {
	return &SchedRuntime{RT: sched.NewRuntime(p)}
}

// Close drains outstanding work and stops the workers.
func (s *SchedRuntime) Close() {
	s.RT.Wait()
	s.RT.Shutdown()
}

// Name implements Runtime.
func (s *SchedRuntime) Name() string { return "sched" }

// Fork implements Runtime.
func (s *SchedRuntime) Fork(ctx Ctx, f func(Ctx)) {
	s.RT.Fork(asWorker(ctx), func(w *sched.Worker) { f(w) })
}

// NewNode implements Runtime.
func (s *SchedRuntime) NewNode() NodeCell { return schedNodeCell{sched.NewCell[*RNode](s.RT)} }

// DoneNode implements Runtime. A born-written cell is the degenerate
// forwarded flow, so it always uses the suspension-free forwarded
// variant — sound under every discipline. The allocation is attributed
// to the runtime's cell counters (ForwardedDoneOn) so per-runtime cell
// budgets include converter-built input trees.
func (s *SchedRuntime) DoneNode(n *RNode) NodeCell {
	return fwdNodeCell{sched.ForwardedDoneOn(s.RT, n)}
}

// NewT26 implements Runtime.
func (s *SchedRuntime) NewT26() T26Cell { return schedT26Cell{sched.NewCell[*RT26Node](s.RT)} }

// DoneT26 implements Runtime.
func (s *SchedRuntime) DoneT26(n *RT26Node) T26Cell {
	return fwdT26Cell{sched.ForwardedDoneOn(s.RT, n)}
}

// NewNodeLinear implements VariantRuntime.
func (s *SchedRuntime) NewNodeLinear() NodeCell {
	return linearNodeCell{sched.NewLinearCell[*RNode](s.RT)}
}

// NewT26Linear implements VariantRuntime.
func (s *SchedRuntime) NewT26Linear() T26Cell {
	return linearT26Cell{sched.NewLinearCell[*RT26Node](s.RT)}
}

var _ VariantRuntime = (*SchedRuntime)(nil)

// asWorker recovers the scheduling context; a nil or foreign ctx means
// "not on a worker", which sched treats as an external submission.
func asWorker(ctx Ctx) *sched.Worker {
	w, _ := ctx.(*sched.Worker)
	return w
}

type schedNodeCell struct{ c *sched.Cell[*RNode] }

func (s schedNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s schedNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s schedNodeCell) Read() *RNode { return s.c.Read() }

type schedT26Cell struct{ c *sched.Cell[*RT26Node] }

func (s schedT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s schedT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s schedT26Cell) Read() *RT26Node { return s.c.Read() }

// The variant wrappers below are deliberately concrete single-pointer
// structs, like schedNodeCell: a struct holding one pointer is
// pointer-shaped, so converting it to the NodeCell/T26Cell interface
// allocates nothing. (An earlier draft held a sched.AnyCell interface
// inside the wrapper; the resulting two-word struct forced a heap box
// per cell creation and cost more than the variants saved.)
type linearNodeCell struct{ c *sched.LinearCell[*RNode] }

func (s linearNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s linearNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s linearNodeCell) Read() *RNode { return s.c.Read() }

type fwdNodeCell struct{ c *sched.ForwardedCell[*RNode] }

func (s fwdNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s fwdNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s fwdNodeCell) Read() *RNode { return s.c.Read() }

type linearT26Cell struct{ c *sched.LinearCell[*RT26Node] }

func (s linearT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s linearT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s linearT26Cell) Read() *RT26Node { return s.c.Read() }

type fwdT26Cell struct {
	c *sched.ForwardedCell[*RT26Node]
}

func (s fwdT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s fwdT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s fwdT26Cell) Read() *RT26Node { return s.c.Read() }
