package paralg

// SchedRuntime adapts the explicit work-stealing scheduler of package
// sched to the portable Runtime interface. The Ctx threaded through the
// algorithms is the current *sched.Worker (nil when entering from outside
// the pool), so every fork lands on the forking worker's own deque and
// every touch of an unwritten cell suspends just the continuation.

import "pipefut/internal/sched"

// SchedRuntime wraps a sched.Runtime. Create one with NewSchedRuntime and
// release its workers with Close when done.
type SchedRuntime struct {
	RT *sched.Runtime
}

// NewSchedRuntime starts a scheduler with p workers.
func NewSchedRuntime(p int) *SchedRuntime {
	return &SchedRuntime{RT: sched.NewRuntime(p)}
}

// NewSchedRuntimeOpts starts a scheduler with p workers and the given
// locality options (affinity groups, steal-half, mailbox bounds).
func NewSchedRuntimeOpts(p int, opt sched.Options) *SchedRuntime {
	return &SchedRuntime{RT: sched.NewRuntimeOpts(p, opt)}
}

// affineCtx is the Ctx produced by AffineCtx: entering an algorithm
// under it routes the ROOT fork through sched.Runtime.Submit with a
// preferred worker. Once the root task runs, the Ctx threaded onward is
// the real *sched.Worker, so descendants take the normal local-deque
// path — the hint steers where a pipeline stage starts, not every node.
// asWorker on an affineCtx yields nil (external), which is exactly the
// contract non-fork operations (Touch, Write) expect from a caller that
// is not on a worker.
type affineCtx struct {
	rt     *sched.Runtime
	worker int
}

// AffineCtx returns a Ctx carrying a locality hint: forks made under it
// are submitted to the preferred worker's mailbox (sched.Submit) rather
// than the global injection queue. Derive worker from a shard or
// partition id with s.RT.AffinityFor. The hint never changes results —
// only which worker's cache the work lands in; verifycross's affinity
// lane replays recorded DAGs through this path to prove it.
func (s *SchedRuntime) AffineCtx(worker int) Ctx {
	return affineCtx{rt: s.RT, worker: worker}
}

// Close drains outstanding work and stops the workers.
func (s *SchedRuntime) Close() {
	s.RT.Wait()
	s.RT.Shutdown()
}

// Name implements Runtime.
func (s *SchedRuntime) Name() string { return "sched" }

// Fork implements Runtime. A ctx made by AffineCtx routes the fork to
// the hinted worker's mailbox; any other ctx follows the usual contract
// (a *sched.Worker forks onto its own deque, nil injects globally).
func (s *SchedRuntime) Fork(ctx Ctx, f func(Ctx)) {
	if a, ok := ctx.(affineCtx); ok {
		a.rt.Submit(nil, func(w *sched.Worker) { f(w) }, a.worker)
		return
	}
	s.RT.Fork(asWorker(ctx), func(w *sched.Worker) { f(w) })
}

// NewNode implements Runtime.
func (s *SchedRuntime) NewNode() NodeCell { return schedNodeCell{sched.NewCell[*RNode](s.RT)} }

// DoneNode implements Runtime. A born-written cell is the degenerate
// forwarded flow, so it always uses the suspension-free forwarded
// variant — sound under every discipline. The allocation is attributed
// to the runtime's cell counters (ForwardedDoneOn) so per-runtime cell
// budgets include converter-built input trees.
func (s *SchedRuntime) DoneNode(n *RNode) NodeCell {
	return fwdNodeCell{sched.ForwardedDoneOn(s.RT, n)}
}

// NewT26 implements Runtime.
func (s *SchedRuntime) NewT26() T26Cell { return schedT26Cell{sched.NewCell[*RT26Node](s.RT)} }

// DoneT26 implements Runtime.
func (s *SchedRuntime) DoneT26(n *RT26Node) T26Cell {
	return fwdT26Cell{sched.ForwardedDoneOn(s.RT, n)}
}

// NewNodeLinear implements VariantRuntime.
func (s *SchedRuntime) NewNodeLinear() NodeCell {
	return linearNodeCell{sched.NewLinearCell[*RNode](s.RT)}
}

// NewT26Linear implements VariantRuntime.
func (s *SchedRuntime) NewT26Linear() T26Cell {
	return linearT26Cell{sched.NewLinearCell[*RT26Node](s.RT)}
}

var _ VariantRuntime = (*SchedRuntime)(nil)

// asWorker recovers the scheduling context; a nil or foreign ctx means
// "not on a worker", which sched treats as an external submission.
func asWorker(ctx Ctx) *sched.Worker {
	w, _ := ctx.(*sched.Worker)
	return w
}

type schedNodeCell struct{ c *sched.Cell[*RNode] }

func (s schedNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s schedNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s schedNodeCell) Read() *RNode { return s.c.Read() }

type schedT26Cell struct{ c *sched.Cell[*RT26Node] }

func (s schedT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s schedT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s schedT26Cell) Read() *RT26Node { return s.c.Read() }

// The variant wrappers below are deliberately concrete single-pointer
// structs, like schedNodeCell: a struct holding one pointer is
// pointer-shaped, so converting it to the NodeCell/T26Cell interface
// allocates nothing. (An earlier draft held a sched.AnyCell interface
// inside the wrapper; the resulting two-word struct forced a heap box
// per cell creation and cost more than the variants saved.)
type linearNodeCell struct{ c *sched.LinearCell[*RNode] }

func (s linearNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s linearNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s linearNodeCell) Read() *RNode { return s.c.Read() }

type fwdNodeCell struct{ c *sched.ForwardedCell[*RNode] }

func (s fwdNodeCell) Write(ctx Ctx, n *RNode) { s.c.Write(asWorker(ctx), n) }
func (s fwdNodeCell) Touch(ctx Ctx, k func(Ctx, *RNode)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RNode) { k(w, n) })
}
func (s fwdNodeCell) Read() *RNode { return s.c.Read() }

type linearT26Cell struct{ c *sched.LinearCell[*RT26Node] }

func (s linearT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s linearT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s linearT26Cell) Read() *RT26Node { return s.c.Read() }

type fwdT26Cell struct {
	c *sched.ForwardedCell[*RT26Node]
}

func (s fwdT26Cell) Write(ctx Ctx, n *RT26Node) { s.c.Write(asWorker(ctx), n) }
func (s fwdT26Cell) Touch(ctx Ctx, k func(Ctx, *RT26Node)) {
	s.c.Touch(asWorker(ctx), func(w *sched.Worker, n *RT26Node) { k(w, n) })
}
func (s fwdT26Cell) Read() *RT26Node { return s.c.Read() }
