package paralg

// Runtime-portable ports of the pipelined algorithms, written in
// continuation-passing style against the Runtime interface: every place
// the classic Config methods block a goroutine on Cell.Read, these ports
// Touch the cell and continue in the callback. On GoRuntime the two
// styles cost the same; on SchedRuntime the CPS form is what lets a
// million suspended threads share p goroutines.
//
// The algorithms are textually parallel to their Config counterparts in
// paralg.go and t26.go (same recursion structure, same depth accounting,
// same helper functions for the 2-6 key arithmetic), so the two can be
// diffed side by side. One deliberate difference: where the classic code
// builds a node after its children's cells exist, the CPS form writes
// each output node as soon as its key is decided and then fills the
// child cells — the same data, available strictly earlier, which is the
// pipelining the paper is about.

import (
	"fmt"

	"pipefut/internal/seqtreap"
	"pipefut/internal/t26"
)

// Merge merges two binary search trees with disjoint key sets (Section
// 3.1) on runtime c.R and returns the result cell immediately; nodes
// materialize concurrently. ctx follows the Fork contract (current
// worker context, or nil from outside the runtime).
func (c RConfig) Merge(ctx Ctx, a, b NodeCell) NodeCell {
	c = c.classed("paralg.RConfig.Merge")
	out := c.newNode()
	c.mergeInto(ctx, 0, a, b, out)
	return out
}

func (c RConfig) mergeInto(ctx Ctx, d int, a, b NodeCell, out NodeCell) {
	if ta, tb, ok := c.chunkArgs(a, b); ok {
		// Below-cutoff: one sequential merge, one frontier cell.
		out.Write(ctx, chunkTop(chunkMerge(ta, tb)))
		return
	}
	c.fork(ctx, d, func(ctx Ctx) {
		a.Touch(ctx, func(ctx Ctx, n1 *RNode) {
			if n1 == nil {
				b.Touch(ctx, out.Write)
				return
			}
			lt, ge := c.rsplit(ctx, d, n1.Key, b)
			nl, nr := c.newNode(), c.newNode()
			out.Write(ctx, &RNode{Key: n1.Key, Prio: n1.Prio, Left: nl, Right: nr})
			c.mergeInto(ctx, d+1, n1.Left, lt, nl)
			c.mergeInto(ctx, d+1, n1.Right, ge, nr)
		})
	})
}

// rsplit divides tree by s into keys < s and keys ≥ s with independently
// written result cells — Figure 12 in CPS form: the near-side output is
// written immediately with the recursive cell as a child, the far-side
// cell is forwarded from the recursion by a touch.
func (c RConfig) rsplit(ctx Ctx, d int, s int, tree NodeCell) (lt, ge NodeCell) {
	if t, ok := c.chunkArg(tree); ok {
		// Below-cutoff: split sequentially into two chunks, zero cells.
		l, g := chunkSplitGE(s, t)
		return chunkCell(l), chunkCell(g)
	}
	lo, ro := c.newNode(), c.newNode()
	c.fork(ctx, d, func(ctx Ctx) {
		tree.Touch(ctx, func(ctx Ctx, n *RNode) {
			if n == nil {
				lo.Write(ctx, nil)
				ro.Write(ctx, nil)
				return
			}
			if s <= n.Key {
				l1, r1 := c.rsplit(ctx, d+1, s, n.Left)
				ro.Write(ctx, &RNode{Key: n.Key, Prio: n.Prio, Left: r1, Right: n.Right})
				l1.Touch(ctx, lo.Write)
			} else {
				l1, r1 := c.rsplit(ctx, d+1, s, n.Right)
				lo.Write(ctx, &RNode{Key: n.Key, Prio: n.Prio, Left: n.Left, Right: l1})
				r1.Touch(ctx, ro.Write)
			}
		})
	})
	return lo, ro
}

// Union returns the union of two treaps, discarding duplicates (Section
// 3.2), on runtime c.R.
func (c RConfig) Union(ctx Ctx, a, b NodeCell) NodeCell {
	c = c.classed("paralg.RConfig.Union")
	out := c.newNode()
	c.unionInto(ctx, 0, a, b, out)
	return out
}

func (c RConfig) unionInto(ctx Ctx, d int, a, b NodeCell, out NodeCell) {
	if ta, tb, ok := c.chunkArgs(a, b); ok {
		// Treap shapes are priority-determined, so the sequential union
		// is node-for-node the tree the pipelined recursion would build.
		out.Write(ctx, chunkTop(seqtreap.Union(ta, tb)))
		return
	}
	c.fork(ctx, d, func(ctx Ctx) {
		a.Touch(ctx, func(ctx Ctx, n1 *RNode) {
			if n1 == nil {
				b.Touch(ctx, out.Write)
				return
			}
			b.Touch(ctx, func(ctx Ctx, n2 *RNode) {
				if n2 == nil {
					out.Write(ctx, n1)
					return
				}
				hi, lo := n1, n2
				if hi.Prio < lo.Prio {
					hi, lo = lo, hi
				}
				l2, r2, _ := c.rsplitM(ctx, d, hi.Key, lo)
				nl, nr := c.newNode(), c.newNode()
				out.Write(ctx, &RNode{Key: hi.Key, Prio: hi.Prio, Left: nl, Right: nr})
				c.unionInto(ctx, d+1, hi.Left, l2, nl)
				c.unionInto(ctx, d+1, hi.Right, r2, nr)
			})
		})
	})
}

// rsplitM splits the treap rooted at the already-read node around s,
// excluding and reporting s itself if present (Union discards the
// duplicate cell; Diff and Intersect branch on it).
func (c RConfig) rsplitM(ctx Ctx, d int, s int, n *RNode) (lt, gt, dup NodeCell) {
	lo, ro, do := c.newNode(), c.newNode(), c.newNode()
	c.fork(ctx, d, func(ctx Ctx) { c.rsplitMBody(ctx, d, s, n, lo, ro, do) })
	return lo, ro, do
}

func (c RConfig) rsplitMBody(ctx Ctx, d int, s int, n *RNode, lo, ro, do NodeCell) {
	if n == nil {
		lo.Write(ctx, nil)
		ro.Write(ctx, nil)
		do.Write(ctx, nil)
		return
	}
	switch {
	case s == n.Key:
		do.Write(ctx, n)
		n.Left.Touch(ctx, lo.Write)
		n.Right.Touch(ctx, ro.Write)
	case s < n.Key:
		l1, r1, d1 := c.rsplitMCell(ctx, d+1, s, n.Left)
		ro.Write(ctx, &RNode{Key: n.Key, Prio: n.Prio, Left: r1, Right: n.Right})
		d1.Touch(ctx, do.Write)
		l1.Touch(ctx, lo.Write)
	default:
		l1, r1, d1 := c.rsplitMCell(ctx, d+1, s, n.Right)
		lo.Write(ctx, &RNode{Key: n.Key, Prio: n.Prio, Left: n.Left, Right: l1})
		d1.Touch(ctx, do.Write)
		r1.Touch(ctx, ro.Write)
	}
}

func (c RConfig) rsplitMCell(ctx Ctx, d int, s int, tree NodeCell) (lt, gt, dup NodeCell) {
	if t, ok := c.chunkArg(tree); ok {
		// Below-cutoff: the consumers only nil-test (or discard) dup, so
		// wrapping the excluded node as a chunk preserves the contract.
		l, g, du := seqtreap.SplitM(s, t)
		return chunkCell(l), chunkCell(g), chunkCell(du)
	}
	lo, ro, do := c.newNode(), c.newNode(), c.newNode()
	c.fork(ctx, d, func(ctx Ctx) {
		tree.Touch(ctx, func(ctx Ctx, n *RNode) { c.rsplitMBody(ctx, d, s, n, lo, ro, do) })
	})
	return lo, ro, do
}

// Diff returns treap a with every key of treap b removed (Section 3.3)
// on runtime c.R. Like the classic diff it cannot write an output node
// before knowing whether the node's key survives, so the write waits on
// the duplicate cell — but both child differences recurse eagerly.
func (c RConfig) Diff(ctx Ctx, a, b NodeCell) NodeCell {
	c = c.classed("paralg.RConfig.Diff")
	out := c.newNode()
	c.diffInto(ctx, 0, a, b, out)
	return out
}

func (c RConfig) diffInto(ctx Ctx, d int, a, b, out NodeCell) {
	if ta, tb, ok := c.chunkArgs(a, b); ok {
		out.Write(ctx, chunkTop(seqtreap.Diff(ta, tb)))
		return
	}
	c.fork(ctx, d, func(ctx Ctx) {
		a.Touch(ctx, func(ctx Ctx, n1 *RNode) {
			if n1 == nil {
				out.Write(ctx, nil)
				return
			}
			b.Touch(ctx, func(ctx Ctx, n2 *RNode) {
				if n2 == nil {
					out.Write(ctx, n1)
					return
				}
				l2, r2, dup := c.rsplitM(ctx, d, n1.Key, n2)
				l, r := c.newNode(), c.newNode()
				c.diffInto(ctx, d+1, n1.Left, l2, l)
				c.diffInto(ctx, d+1, n1.Right, r2, r)
				dup.Touch(ctx, func(ctx Ctx, dn *RNode) {
					if dn == nil {
						out.Write(ctx, &RNode{Key: n1.Key, Prio: n1.Prio, Left: l, Right: r})
						return
					}
					c.joinInto(ctx, d, l, r, out)
				})
			})
		})
	})
}

// Intersect returns the treap of keys present in both treaps — the
// extension companion of Union and Diff, pipelined the same way.
func (c RConfig) Intersect(ctx Ctx, a, b NodeCell) NodeCell {
	c = c.classed("paralg.RConfig.Intersect")
	out := c.newNode()
	c.intersectInto(ctx, 0, a, b, out)
	return out
}

func (c RConfig) intersectInto(ctx Ctx, d int, a, b, out NodeCell) {
	if ta, tb, ok := c.chunkArgs(a, b); ok {
		out.Write(ctx, chunkTop(seqtreap.Intersect(ta, tb)))
		return
	}
	c.fork(ctx, d, func(ctx Ctx) {
		a.Touch(ctx, func(ctx Ctx, n1 *RNode) {
			if n1 == nil {
				out.Write(ctx, nil)
				return
			}
			b.Touch(ctx, func(ctx Ctx, n2 *RNode) {
				if n2 == nil {
					out.Write(ctx, nil)
					return
				}
				l2, r2, dup := c.rsplitM(ctx, d, n1.Key, n2)
				l, r := c.newNode(), c.newNode()
				c.intersectInto(ctx, d+1, n1.Left, l2, l)
				c.intersectInto(ctx, d+1, n1.Right, r2, r)
				dup.Touch(ctx, func(ctx Ctx, dn *RNode) {
					if dn != nil {
						out.Write(ctx, &RNode{Key: n1.Key, Prio: n1.Prio, Left: l, Right: r})
						return
					}
					c.joinInto(ctx, d, l, r, out)
				})
			})
		})
	})
}

// Join joins two treaps where every key of a precedes every key of b.
func (c RConfig) Join(ctx Ctx, a, b NodeCell) NodeCell {
	c = c.classed("paralg.RConfig.Join")
	out := c.newNode()
	c.fork(ctx, 0, func(ctx Ctx) { c.joinInto(ctx, 0, a, b, out) })
	return out
}

func (c RConfig) joinInto(ctx Ctx, d int, a, b, out NodeCell) {
	if ta, tb, ok := c.chunkArgs(a, b); ok {
		out.Write(ctx, chunkTop(seqtreap.Join(ta, tb)))
		return
	}
	a.Touch(ctx, func(ctx Ctx, na *RNode) {
		if na == nil {
			b.Touch(ctx, out.Write)
			return
		}
		b.Touch(ctx, func(ctx Ctx, nb *RNode) {
			if nb == nil {
				out.Write(ctx, na)
				return
			}
			c.joinNodesInto(ctx, d, na, nb, out)
		})
	})
}

// joinNodesInto is joinNodes in CPS — with the pipelining twist the
// classic form lacks: the winning root is written before the recursive
// join below it resolves, so consumers see the result's spine early.
func (c RConfig) joinNodesInto(ctx Ctx, d int, na, nb *RNode, out NodeCell) {
	if na.Prio > nb.Prio {
		right := c.newNode()
		out.Write(ctx, &RNode{Key: na.Key, Prio: na.Prio, Left: na.Left, Right: right})
		c.fork(ctx, d, func(ctx Ctx) {
			na.Right.Touch(ctx, func(ctx Ctx, r *RNode) {
				if r == nil {
					right.Write(ctx, nb) // nothing right of the seam in a: the rest is all of b
					return
				}
				c.joinNodesInto(ctx, d+1, r, nb, right)
			})
		})
		return
	}
	left := c.newNode()
	out.Write(ctx, &RNode{Key: nb.Key, Prio: nb.Prio, Left: left, Right: nb.Right})
	c.fork(ctx, d, func(ctx Ctx) {
		nb.Left.Touch(ctx, func(ctx Ctx, l *RNode) {
			if l == nil {
				left.Write(ctx, na)
				return
			}
			c.joinNodesInto(ctx, d+1, na, l, left)
		})
	})
}

// T26Insert inserts one well-separated sorted key array (Section 3.4) on
// runtime c.R and returns the new root cell immediately.
func (c RConfig) T26Insert(ctx Ctx, tree T26Cell, ws []int) T26Cell {
	c = c.classed("paralg.RConfig.T26Insert")
	out := c.newT26()
	run := func(ctx Ctx) {
		tree.Touch(ctx, func(ctx Ctx, n *RT26Node) {
			if len(ws) == 0 {
				out.Write(ctx, n)
				return
			}
			if len(n.Keys) >= t26SplitThreshold {
				l, mid, r := splitRT26Node(n)
				n = &RT26Node{Keys: []int{mid}, Kids: []T26Cell{c.R.DoneT26(l), c.R.DoneT26(r)}}
			}
			c.t26InsertInto(ctx, 0, n, ws, out)
		})
	}
	if c.SpawnDepth > 0 {
		c.R.Fork(ctx, run)
	} else {
		run(ctx)
	}
	return out
}

// T26BulkInsert pipelines the level arrays through the tree: each
// insertion starts as soon as the previous root cell is written.
func (c RConfig) T26BulkInsert(ctx Ctx, tree T26Cell, levels [][]int) T26Cell {
	c = c.classed("paralg.RConfig.T26BulkInsert")
	for _, lv := range levels {
		tree = c.T26Insert(ctx, tree, lv)
	}
	return tree
}

func splitRT26Node(n *RT26Node) (l *RT26Node, mid int, r *RT26Node) {
	m := len(n.Keys) / 2
	mid = n.Keys[m]
	l = &RT26Node{Keys: append([]int(nil), n.Keys[:m]...)}
	r = &RT26Node{Keys: append([]int(nil), n.Keys[m+1:]...)}
	if !n.IsLeaf() {
		l.Kids = append([]T26Cell(nil), n.Kids[:m+1]...)
		r.Kids = append([]T26Cell(nil), n.Kids[m+1:]...)
	}
	return l, mid, r
}

// t26InsertInto is t26InsertBody in CPS: the descending loop over
// partitions becomes a continuation chain, each child touch resuming the
// loop at the next lower index. newKeys/newKids are touched by exactly
// one continuation at a time (the chain is a single logical thread;
// the cell's write→touch edge orders the handoff), so no locking.
func (c RConfig) t26InsertInto(ctx Ctx, d int, n *RT26Node, ws []int, out T26Cell) {
	if n.IsLeaf() {
		merged := mergeUniqueKeys(n.Keys, ws)
		if len(merged) > t26.MaxKeys {
			panic(fmt.Sprintf("paralg: leaf would hold %d keys — insert array not well separated", len(merged)))
		}
		out.Write(ctx, &RT26Node{Keys: merged})
		return
	}
	parts := partitionKeys(ws, n.Keys)
	newKeys := append([]int(nil), n.Keys...)
	newKids := append([]T26Cell(nil), n.Kids...)
	var step func(ctx Ctx, i int)
	step = func(ctx Ctx, i int) {
		for ; i >= 0; i-- {
			sub := parts[i]
			if len(sub) == 0 {
				continue
			}
			i := i
			newKids[i].Touch(ctx, func(ctx Ctx, child *RT26Node) {
				if len(child.Keys) >= t26SplitThreshold {
					l, mid, r := splitRT26Node(child)
					wl, wr := splitKeysAround(sub, mid)
					nl, nr := c.R.DoneT26(l), c.R.DoneT26(r)
					if len(wl) > 0 {
						nl = c.rt26Recurse(ctx, d+1, l, wl)
					}
					if len(wr) > 0 {
						nr = c.rt26Recurse(ctx, d+1, r, wr)
					}
					newKeys = insertKeyAt(newKeys, i, mid)
					newKids[i] = nl
					newKids = insertT26CellAt(newKids, i+1, nr)
				} else {
					newKids[i] = c.rt26Recurse(ctx, d+1, child, sub)
				}
				step(ctx, i-1)
			})
			return // the loop continues inside the touch continuation
		}
		if len(newKeys) > t26.MaxKeys {
			panic(fmt.Sprintf("paralg: node would hold %d keys — invariant violated", len(newKeys)))
		}
		out.Write(ctx, &RT26Node{Keys: newKeys, Kids: newKids})
	}
	step(ctx, len(parts)-1)
}

func (c RConfig) rt26Recurse(ctx Ctx, d int, n *RT26Node, ws []int) T26Cell {
	out := c.newT26()
	c.fork(ctx, d, func(ctx Ctx) { c.t26InsertInto(ctx, d, n, ws, out) })
	return out
}

func insertT26CellAt(xs []T26Cell, i int, v T26Cell) []T26Cell {
	xs = append(xs, nil)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}
