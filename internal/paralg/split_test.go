package paralg

import (
	"testing"
	"testing/quick"

	"pipefut/internal/seqtreap"
	"pipefut/internal/workload"
)

// Treaps are history-independent (priorities are a pure hash of the key),
// so the pieces of any split must be structurally equal to treaps built
// directly over the filtered key sets.

func TestSplitMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, pivotPick, cfgPick uint8) bool {
			n := int(n8%200) + 1
			rng := workload.NewRNG(uint64(seed))
			keys := workload.DistinctKeys(rng, n, 4*n)
			pivot := int(pivotPick) % (4 * n)
			var lo, hi []int
			for _, k := range keys {
				if k < pivot {
					lo = append(lo, k)
				} else {
					hi = append(hi, k)
				}
			}

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			lt, ge := cfg.Split(nil, RFromSeqTreap(r, seqtreap.FromKeys(keys)), pivot)
			return seqtreap.Equal(RToSeqTreap(lt), seqtreap.FromKeys(lo)) &&
				seqtreap.Equal(RToSeqTreap(ge), seqtreap.FromKeys(hi))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSplitRangesMatchesOracleProperty(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		f := func(seed uint16, n8, k8, cfgPick uint8) bool {
			n := int(n8%200) + 1
			k := int(k8%7) + 1 // 1..7 shards → 0..6 pivots
			universe := 4 * n
			rng := workload.NewRNG(uint64(seed))
			keys := workload.DistinctKeys(rng, n, universe)
			pivots := make([]int, 0, k-1)
			for i := 1; i < k; i++ {
				pivots = append(pivots, universe*i/k)
			}

			cfg := RConfig{R: r, SpawnDepth: portSpawnDepths[int(cfgPick)%len(portSpawnDepths)]}
			pieces := cfg.SplitRanges(nil, RFromSeqTreap(r, seqtreap.FromKeys(keys)), pivots)
			if len(pieces) != k {
				return false
			}
			for i, piece := range pieces {
				lo, hi := minIntKey, maxIntKey
				if i > 0 {
					lo = pivots[i-1]
				}
				if i < len(pivots) {
					hi = pivots[i]
				}
				var want []int
				for _, key := range keys {
					if key >= lo && key < hi {
						want = append(want, key)
					}
				}
				if !seqtreap.Equal(RToSeqTreap(piece), seqtreap.FromKeys(want)) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Fatal(err)
		}
	})
}

const (
	minIntKey = -1 << 62
	maxIntKey = 1 << 62
)

// TestSplitRangesNoPivots: the degenerate single-shard partition returns
// the input cell itself — no split work at all.
func TestSplitRangesNoPivots(t *testing.T) {
	r := GoRuntime{}
	cfg := RConfig{R: r, SpawnDepth: 4}
	in := RFromSeqTreap(r, seqtreap.FromKeys([]int{3, 1, 2}))
	out := cfg.SplitRanges(nil, in, nil)
	if len(out) != 1 || out[0] != in {
		t.Fatalf("SplitRanges with no pivots: got %d pieces, want the input cell back", len(out))
	}
}

// TestSplitOfUnderConstructionTree: splitting a result cell that is still
// materializing (the output of a pipelined union) works — the split
// consumes cells as they are written.
func TestSplitOfUnderConstructionTree(t *testing.T) {
	withPortRuntimes(t, func(t *testing.T, r Runtime) {
		cfg := RConfig{R: r, SpawnDepth: 64}
		rng := workload.NewRNG(7)
		ka := workload.DistinctKeys(rng, 300, 2048)
		kb := workload.DistinctKeys(rng, 300, 2048)
		u := cfg.Union(nil, RFromSeqTreap(r, seqtreap.FromKeys(ka)), RFromSeqTreap(r, seqtreap.FromKeys(kb)))
		lt, ge := cfg.Split(nil, u, 1024)

		all := seqtreap.Union(seqtreap.FromKeys(ka), seqtreap.FromKeys(kb))
		var lo, hi []int
		for _, k := range seqtreap.Keys(all) {
			if k < 1024 {
				lo = append(lo, k)
			} else {
				hi = append(hi, k)
			}
		}
		if !seqtreap.Equal(RToSeqTreap(lt), seqtreap.FromKeys(lo)) {
			t.Error("< side of split-under-construction diverges from oracle")
		}
		if !seqtreap.Equal(RToSeqTreap(ge), seqtreap.FromKeys(hi)) {
			t.Error("≥ side of split-under-construction diverges from oracle")
		}
	})
}
