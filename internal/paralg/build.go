package paralg

import (
	"pipefut/internal/future"
	"pipefut/internal/seqtreap"
)

// BuildTreap builds a treap over the keys by divide-and-conquer pipelined
// unions on goroutines. The root becomes available while most of the tree
// is still under construction, so queries and further set operations can
// start immediately — the asynchronous-construction use of futures.
func (c Config) BuildTreap(keys []int) Tree {
	return c.buildTreap(0, keys)
}

func (c Config) buildTreap(d int, keys []int) Tree {
	if len(keys) <= 64 || !c.spawn(d) {
		// Small or below the grain bound: build directly.
		return FromSeqTreap(seqtreap.FromKeys(keys))
	}
	a := future.Spawn(func() Tree { return c.buildTreap(d+1, keys[:len(keys)/2]) })
	b := c.buildTreap(d+1, keys[len(keys)/2:])
	return c.union(d, a.Read(), b)
}

// InsertKeys returns the treap with all keys added, as one pipelined union.
func (c Config) InsertKeys(tree Tree, keys []int) Tree {
	return c.Union(tree, c.BuildTreap(keys))
}

// DeleteKeys returns the treap with all keys removed, as one pipelined
// difference.
func (c Config) DeleteKeys(tree Tree, keys []int) Tree {
	return c.Diff(tree, c.BuildTreap(keys))
}
