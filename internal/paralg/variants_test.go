package paralg

import (
	"sort"
	"testing"

	"pipefut/internal/seqtreap"
	"pipefut/internal/t26"
	"pipefut/internal/workload"
)

// TestLinearCellsDisciplineMatchesOracle runs the buildtreap witness
// group's composition (build, batch insert, batch delete) under the
// LinearCells discipline on the sched runtime — so fresh cells are
// sched.LinearCell — and checks the result against the sequential
// oracle plus the specialization counters: the run must actually have
// touched linear cells and forwarded (born-written) cells.
func TestLinearCellsDisciplineMatchesOracle(t *testing.T) {
	s := NewSchedRuntime(4)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 6, Discipline: LinearCells}

	rng := workload.NewRNG(11)
	ka, kb := workload.DisjointKeySets(rng, 400, 300)
	base := cfg.BuildTreap(nil, ka)
	tree := cfg.InsertKeys(nil, base, kb)
	tree = cfg.DeleteKeys(nil, tree, ka[:200])
	got := RToSeqTreap(tree)

	want := seqtreap.Diff(seqtreap.Union(seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)), seqtreap.FromKeys(ka[:200]))
	if !seqtreap.Equal(got, want) {
		t.Error("LinearCells build/insert/delete composition disagrees with the sequential oracle")
	}

	ctr := s.RT.Counters()
	if ctr.LinearTouches == 0 {
		t.Error("no linear-cell touches recorded: specialization did not engage")
	}
	if ctr.ForwardedTouches == 0 {
		t.Error("no forwarded-cell touches recorded: DoneNode cells should be forwarded")
	}
	t.Logf("counters: %v", ctr)
}

// TestLinearCellsT26MatchesOracle runs the t26 witness group's shape
// (bulk insert with a materialization barrier per batch — the serve t26
// backend's exact pattern) under LinearCells.
func TestLinearCellsT26MatchesOracle(t *testing.T) {
	s := NewSchedRuntime(4)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 4, Discipline: LinearCells}

	rng := workload.NewRNG(13)
	all := workload.DistinctKeys(rng, 500, 2000)
	base, ins := all[:200], append([]int(nil), all[200:]...)
	sort.Ints(ins)

	tree := cfg.T26BulkInsert(nil, RFromSeqT26(s, t26.FromKeys(base)), workload.WellSeparatedLevels(ins))
	RWaitT26(tree)

	want := append(append([]int(nil), base...), ins...)
	sort.Ints(want)
	if got := t26.Keys(RToSeqT26(tree)); !equalInts(got, want) {
		t.Errorf("LinearCells t26 bulk insert lost keys: got %d keys, want %d", len(got), len(want))
	}
	if ctr := s.RT.Counters(); ctr.LinearTouches == 0 {
		t.Error("no linear-cell touches recorded on the t26 insert chain")
	}
}

// TestLinearCellsJoin exercises a forwarded-class entry point (the join
// group's meet is forwarded): fresh result cells must still be capped
// at the linear variant, because the consumer's touch of a result cell
// may precede the pipelined write.
func TestLinearCellsJoin(t *testing.T) {
	s := NewSchedRuntime(4)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 4, Discipline: LinearCells}

	rng := workload.NewRNG(17)
	ka, kb := workload.DisjointKeySets(rng, 200, 200)
	sort.Ints(ka)
	sort.Ints(kb)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)

	got := cfg.Join(nil, RFromSeqTreap(s, ta), RFromSeqTreap(s, tb))
	if !seqtreap.Equal(RToSeqTreap(got), seqtreap.Join(ta, tb)) {
		t.Error("LinearCells join disagrees with the sequential oracle")
	}
}

// TestSharedCellsStaysGeneral checks the fallback: the zero-value
// discipline must allocate no specialized fresh cells even on a
// variant-capable runtime. (ForwardedTouches may still be nonzero:
// born-written DoneNode cells are forwarded under every discipline.)
func TestSharedCellsStaysGeneral(t *testing.T) {
	s := NewSchedRuntime(4)
	defer s.Close()
	cfg := RConfig{R: s, SpawnDepth: 6} // Discipline: SharedCells

	rng := workload.NewRNG(19)
	ka, kb := workload.OverlappingKeySets(rng, 300, 300, 0.3)
	out := cfg.Union(nil, cfg.BuildTreap(nil, ka), cfg.BuildTreap(nil, kb))
	RWait(out)

	if ctr := s.RT.Counters(); ctr.LinearTouches != 0 || ctr.LinearSuspensions != 0 {
		t.Errorf("SharedCells run recorded linear-cell traffic: %v", ctr)
	}
}

// TestLinearCellsOnGoRuntime checks the runtime gate: GoRuntime does
// not implement VariantRuntime, so LinearCells must silently fall back
// to general future cells.
func TestLinearCellsOnGoRuntime(t *testing.T) {
	cfg := RConfig{R: GoRuntime{}, SpawnDepth: 3, Discipline: LinearCells}
	rng := workload.NewRNG(23)
	ka, kb := workload.OverlappingKeySets(rng, 200, 200, 0.5)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
	got := cfg.Union(nil, RFromSeqTreap(GoRuntime{}, ta), RFromSeqTreap(GoRuntime{}, tb))
	if !seqtreap.Equal(RToSeqTreap(got), seqtreap.Union(ta, tb)) {
		t.Error("LinearCells on GoRuntime disagrees with the sequential oracle")
	}
}

// BenchmarkDiscipline measures the end-to-end cost of the same pipelined
// union under the general cells (SharedCells) and the specialized ones
// (LinearCells) on the sched runtime — the number the manifest-driven
// specialization has to justify.
func BenchmarkDiscipline(b *testing.B) {
	rng := workload.NewRNG(29)
	ka, kb := workload.DisjointKeySets(rng, 4000, 4000)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)
	for _, d := range []struct {
		name string
		disc CellDiscipline
	}{{"shared", SharedCells}, {"linear", LinearCells}} {
		b.Run("union/"+d.name, func(b *testing.B) {
			s := NewSchedRuntime(4)
			defer s.Close()
			cfg := RConfig{R: s, SpawnDepth: 8, Discipline: d.disc}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RWait(cfg.Union(nil, RFromSeqTreap(s, ta), RFromSeqTreap(s, tb)))
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
