// Package pipefut is a Go reproduction of "Pipelining with Futures"
// (G. E. Blelloch and M. Reid-Miller, SPAA 1997 / Theory of Computing
// Systems 32, 1999): futures — write-once result cells with blocking
// reads — implement pipelining *implicitly*, so simple recursive tree code
// gets the O(lg n + lg m) depth that previously required intricate
// hand-managed pipelines.
//
// The package exposes three layers:
//
//   - Futures for real parallel execution (Cell, Spawn, ...), running on
//     goroutines with Go's scheduler as the paper's runtime system.
//
//   - Set, an immutable ordered set backed by treaps whose bulk operations
//     (Union, Subtract, Intersect) are the paper's pipelined parallel
//     algorithms: every tree edge is a future cell, so partially built
//     trees stream between pipeline stages.
//
//   - The cost model (Engine, Ctx, Fork, Touch, ...), a virtual-time
//     instrument that measures the work and depth of a future-based
//     computation exactly as the paper's DAG model defines them. The
//     experiment harness (cmd/pipebench) uses it to reproduce every
//     theorem of the paper's analysis.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package pipefut

import (
	"pipefut/internal/core"
	"pipefut/internal/future"
)

// ---- Futures: real parallel execution -----------------------------------

// Cell is a write-once future cell: Write publishes a value exactly once
// and Read blocks until it is available. See package future.
type Cell[T any] = future.Cell[T]

// NewCell returns an empty future cell.
func NewCell[T any]() *Cell[T] { return future.New[T]() }

// Done returns a cell that already holds v.
func Done[T any](v T) *Cell[T] { return future.Done(v) }

// Spawn is a future call: it starts evaluating f in a new goroutine and
// immediately returns the cell its result will be written to.
func Spawn[T any](f func() T) *Cell[T] { return future.Spawn(f) }

// Spawn2 is a future call with two independently written result cells —
// the construct that makes the paper's dynamic pipelines expressible (one
// result of a split can be ready long before the other).
func Spawn2[A, B any](f func(a *Cell[A], b *Cell[B])) (*Cell[A], *Cell[B]) {
	return future.Spawn2(f)
}

// Spawn3 is a future call with three independently written result cells.
func Spawn3[A, B, C any](f func(a *Cell[A], b *Cell[B], c *Cell[C])) (*Cell[A], *Cell[B], *Cell[C]) {
	return future.Spawn3(f)
}

// ---- Cost model: measured virtual-time execution ------------------------

// Engine measures the work and depth of a future-based computation in the
// paper's DAG cost model. See package core for the full API.
type Engine = core.Engine

// Ctx is a logical thread in a measured computation.
type Ctx = core.Ctx

// Costs reports the measured work, depth, and linearity of a computation.
type Costs = core.Costs

// MCell is a future cell in a measured computation.
type MCell[T any] = core.Cell[T]

// NewEngine returns a fresh cost-model engine (pass nil for no DAG trace).
func NewEngine() *Engine { return core.NewEngine(nil) }

// Measure runs f as the root thread of a fresh engine and returns the
// computation's costs. The fastest way to ask "what are the work and depth
// of this algorithm on this input?":
//
//	costs := pipefut.Measure(func(t *pipefut.Ctx) {
//		t.Step(1)
//		c := pipefut.Fork(t, func(t *pipefut.Ctx) int { t.Step(5); return 42 })
//		_ = pipefut.Touch(t, c)
//	})
func Measure(f func(t *Ctx)) Costs {
	eng := core.NewEngine(nil)
	f(eng.NewCtx())
	return eng.Finish()
}

// Fork is a measured future call returning one cell (core.Fork1).
func Fork[A any](t *Ctx, f func(t *Ctx) A) *MCell[A] { return core.Fork1(t, f) }

// Touch reads a measured future cell, suspending (in virtual time) until
// it has been written.
func Touch[A any](t *Ctx, c *MCell[A]) A { return core.Touch(t, c) }

// Write writes a measured future cell (once).
func Write[A any](t *Ctx, c *MCell[A], v A) { core.Write(t, c, v) }
