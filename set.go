package pipefut

import (
	"runtime"

	"pipefut/internal/paralg"
	"pipefut/internal/seqtreap"
)

// Set is an immutable ordered set of ints backed by a treap whose edges are
// future cells. Bulk operations (Union, Subtract, Intersect) run the
// paper's pipelined parallel algorithms and return immediately; the
// result's nodes materialize concurrently and any operation that needs
// them blocks only as far as it must. Because sets are immutable they may
// be shared freely between goroutines.
//
// Sets run on one of two runtimes. The default (NewSet, NewSetAsync) is
// the goroutine runtime: every future is a goroutine and Go's scheduler
// is the paper's runtime system. A Pool runs the same algorithms on the
// explicit work-stealing scheduler of internal/sched instead, where
// suspending on an unwritten edge parks a continuation rather than a
// goroutine.
//
// Priorities are a pure hash of the key, so a set's tree shape depends only
// on its contents — two sets with equal contents are structurally
// identical no matter how they were computed.
type Set struct {
	root paralg.NodeCell
	cfg  paralg.RConfig
}

// defaultRCfg is the goroutine-runtime configuration NewSet uses,
// mirroring paralg.DefaultConfig's grain bound.
func defaultRCfg() paralg.RConfig {
	return paralg.RConfig{R: paralg.GoRuntime{}, SpawnDepth: paralg.DefaultConfig.SpawnDepth}
}

// NewSet returns the set of the given keys (duplicates are fine).
func NewSet(keys ...int) *Set {
	cfg := defaultRCfg()
	return &Set{root: paralg.RFromSeqTreap(cfg.R, seqtreap.FromKeys(keys)), cfg: cfg}
}

// NewSetAsync returns the set of the given keys, constructing the treap
// concurrently by divide-and-conquer pipelined unions: the call returns
// immediately and queries (Contains, further set operations) run against
// the in-flight structure, blocking only as far as they must. Prefer it
// over NewSet for large key sets when you have work to overlap.
func NewSetAsync(keys ...int) *Set {
	cfg := defaultRCfg()
	return &Set{root: cfg.BuildTreap(nil, keys), cfg: cfg}
}

// WithSpawnDepth returns a set that runs its bulk operations spawning
// futures only down to the given recursion depth (0 = sequential). The
// contents are shared, not copied.
func (s *Set) WithSpawnDepth(d int) *Set {
	return &Set{root: s.root, cfg: paralg.RConfig{R: s.cfg.R, SpawnDepth: d}}
}

// adopt returns t's root as a cell tree on s's runtime. Same runtime:
// shared directly. Different runtimes: t is materialized (blocking) and
// copied, because cells are owned by the runtime that created them.
func (s *Set) adopt(t *Set) paralg.NodeCell {
	if s.cfg.R == t.cfg.R {
		return t.root
	}
	return paralg.RFromSeqTreap(s.cfg.R, paralg.RToSeqTreap(t.root))
}

// Union returns s ∪ t (Section 3.2 of the paper, pipelined).
func (s *Set) Union(t *Set) *Set {
	return &Set{root: s.cfg.Union(nil, s.root, s.adopt(t)), cfg: s.cfg}
}

// Subtract returns s \ t (Section 3.3 of the paper, pipelined).
func (s *Set) Subtract(t *Set) *Set {
	return &Set{root: s.cfg.Diff(nil, s.root, s.adopt(t)), cfg: s.cfg}
}

// Intersect returns s ∩ t (an extension of the paper's algorithm family,
// pipelined like Subtract).
func (s *Set) Intersect(t *Set) *Set {
	return &Set{root: s.cfg.Intersect(nil, s.root, s.adopt(t)), cfg: s.cfg}
}

// Insert returns s with key added.
func (s *Set) Insert(key int) *Set {
	one := &Set{root: paralg.RFromSeqTreap(s.cfg.R, seqtreap.New(key)), cfg: s.cfg}
	return s.Union(one)
}

// Delete returns s with key removed.
func (s *Set) Delete(key int) *Set {
	one := &Set{root: paralg.RFromSeqTreap(s.cfg.R, seqtreap.New(key)), cfg: s.cfg}
	return s.Subtract(one)
}

// Contains reports whether key is in the set. It blocks only on the cells
// along the search path, so it can run while the set is still being
// computed.
func (s *Set) Contains(key int) bool {
	t := s.root
	for {
		n := t.Read()
		if n == nil {
			return false
		}
		switch {
		case key == n.Key:
			return true
		case key < n.Key:
			t = n.Left
		default:
			t = n.Right
		}
	}
}

// Keys returns the set's contents in ascending order, blocking until the
// whole set is materialized.
func (s *Set) Keys() []int {
	var out []int
	var walk func(t paralg.NodeCell)
	walk = func(t paralg.NodeCell) {
		n := t.Read()
		if n == nil {
			return
		}
		walk(n.Left)
		out = append(out, n.Key)
		walk(n.Right)
	}
	walk(s.root)
	return out
}

// Len returns the number of keys, blocking until the set is materialized.
func (s *Set) Len() int { return len(s.Keys()) }

// Wait blocks until the set is completely materialized. Useful for timing.
func (s *Set) Wait() { paralg.RWait(s.root) }

// Equal reports whether two sets have the same contents.
func (s *Set) Equal(t *Set) bool {
	a, b := s.Keys(), t.Keys()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- Pool: sets on the explicit work-stealing scheduler -----------------

// Pool is a fixed fleet of scheduler workers that runs set operations as
// suspendable tasks instead of goroutines. Sets made by the same pool
// compose without copying; mixing sets from different pools (or from
// NewSet) works but materializes the foreign operand first.
//
// Close the pool when done. Close first waits for every outstanding
// operation to finish and only then stops the workers, so a set built on
// the pool remains fully readable after Close — reads of a pool set can
// never block on a future no worker will resolve. (A cell stranded by a
// bare sched.Runtime.Shutdown, by contrast, fails its reads with
// ErrShutdown rather than hanging.)
type Pool struct {
	rt  *paralg.SchedRuntime
	cfg paralg.RConfig
}

// NewPool starts a pool of p scheduler workers (p ≤ 0 means GOMAXPROCS).
func NewPool(p int) *Pool {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	rt := paralg.NewSchedRuntime(p)
	return &Pool{rt: rt, cfg: paralg.RConfig{R: rt, SpawnDepth: paralg.DefaultConfig.SpawnDepth}}
}

// NewSet returns the set of the given keys, materialized immediately.
func (p *Pool) NewSet(keys ...int) *Set {
	return &Set{root: paralg.RFromSeqTreap(p.cfg.R, seqtreap.FromKeys(keys)), cfg: p.cfg}
}

// NewSetAsync returns the set of the given keys, built concurrently on the
// pool's workers by pipelined unions.
func (p *Pool) NewSetAsync(keys ...int) *Set {
	return &Set{root: p.cfg.BuildTreap(nil, keys), cfg: p.cfg}
}

// Close forces every in-flight operation to completion, then stops the
// workers. Sets built on the pool stay valid and readable afterwards; new
// operations on them must not be started (forking on a closed pool
// panics).
func (p *Pool) Close() { p.rt.Close() }

// Sort sorts xs (ascending, duplicates removed) with the future-based tree
// mergesort of the paper's Section 5 conjecture, running on goroutines.
func Sort(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	t := paralg.DefaultConfig.Mergesort(xs)
	out := keysOf(t)
	// Mergesort keeps duplicates adjacent but a Set would not; dedupe to
	// match the documented contract.
	dst := out[:0]
	for i, k := range out {
		if i == 0 || k != dst[len(dst)-1] {
			dst = append(dst, k)
		}
	}
	return dst
}

func keysOf(t paralg.Tree) []int {
	var out []int
	var walk func(t paralg.Tree)
	walk = func(t paralg.Tree) {
		n := t.Read()
		if n == nil {
			return
		}
		walk(n.Left)
		out = append(out, n.Key)
		walk(n.Right)
	}
	walk(t)
	return out
}
