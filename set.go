package pipefut

import (
	"pipefut/internal/paralg"
	"pipefut/internal/seqtreap"
)

// Set is an immutable ordered set of ints backed by a treap whose edges are
// future cells. Bulk operations (Union, Subtract, Intersect) run the
// paper's pipelined parallel algorithms on goroutines and return
// immediately; the result's nodes materialize concurrently and any
// operation that needs them blocks only as far as it must. Because sets
// are immutable they may be shared freely between goroutines.
//
// Priorities are a pure hash of the key, so a set's tree shape depends only
// on its contents — two sets with equal contents are structurally
// identical no matter how they were computed.
type Set struct {
	root paralg.Tree
	cfg  paralg.Config
}

// NewSet returns the set of the given keys (duplicates are fine).
func NewSet(keys ...int) *Set {
	return &Set{
		root: paralg.FromSeqTreap(seqtreap.FromKeys(keys)),
		cfg:  paralg.DefaultConfig,
	}
}

// NewSetAsync returns the set of the given keys, constructing the treap
// concurrently by divide-and-conquer pipelined unions: the call returns
// immediately and queries (Contains, further set operations) run against
// the in-flight structure, blocking only as far as they must. Prefer it
// over NewSet for large key sets when you have work to overlap.
func NewSetAsync(keys ...int) *Set {
	cfg := paralg.DefaultConfig
	return &Set{root: cfg.BuildTreap(keys), cfg: cfg}
}

// WithSpawnDepth returns a set that runs its bulk operations spawning
// goroutines only down to the given recursion depth (0 = sequential). The
// contents are shared, not copied.
func (s *Set) WithSpawnDepth(d int) *Set {
	return &Set{root: s.root, cfg: paralg.Config{SpawnDepth: d}}
}

// Union returns s ∪ t (Section 3.2 of the paper, pipelined).
func (s *Set) Union(t *Set) *Set {
	return &Set{root: s.cfg.Union(s.root, t.root), cfg: s.cfg}
}

// Subtract returns s \ t (Section 3.3 of the paper, pipelined).
func (s *Set) Subtract(t *Set) *Set {
	return &Set{root: s.cfg.Diff(s.root, t.root), cfg: s.cfg}
}

// Intersect returns s ∩ t (an extension of the paper's algorithm family,
// pipelined like Subtract).
func (s *Set) Intersect(t *Set) *Set {
	return &Set{root: s.cfg.Intersect(s.root, t.root), cfg: s.cfg}
}

// Insert returns s with key added.
func (s *Set) Insert(key int) *Set { return s.Union(NewSet(key)) }

// Delete returns s with key removed.
func (s *Set) Delete(key int) *Set { return s.Subtract(NewSet(key)) }

// Contains reports whether key is in the set. It blocks only on the cells
// along the search path, so it can run while the set is still being
// computed.
func (s *Set) Contains(key int) bool {
	t := s.root
	for {
		n := t.Read()
		if n == nil {
			return false
		}
		switch {
		case key == n.Key:
			return true
		case key < n.Key:
			t = n.Left
		default:
			t = n.Right
		}
	}
}

// Keys returns the set's contents in ascending order, blocking until the
// whole set is materialized.
func (s *Set) Keys() []int {
	var out []int
	var walk func(t paralg.Tree)
	walk = func(t paralg.Tree) {
		n := t.Read()
		if n == nil {
			return
		}
		walk(n.Left)
		out = append(out, n.Key)
		walk(n.Right)
	}
	walk(s.root)
	return out
}

// Len returns the number of keys, blocking until the set is materialized.
func (s *Set) Len() int { return len(s.Keys()) }

// Wait blocks until the set is completely materialized. Useful for timing.
func (s *Set) Wait() { paralg.Wait(s.root) }

// Equal reports whether two sets have the same contents.
func (s *Set) Equal(t *Set) bool {
	a, b := s.Keys(), t.Keys()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Sort sorts xs (ascending, duplicates removed) with the future-based tree
// mergesort of the paper's Section 5 conjecture, running on goroutines.
func Sort(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	t := paralg.DefaultConfig.Mergesort(xs)
	out := keysOf(t)
	// Mergesort keeps duplicates adjacent but a Set would not; dedupe to
	// match the documented contract.
	dst := out[:0]
	for i, k := range out {
		if i == 0 || k != dst[len(dst)-1] {
			dst = append(dst, k)
		}
	}
	return dst
}

func keysOf(t paralg.Tree) []int {
	var out []int
	var walk func(t paralg.Tree)
	walk = func(t paralg.Tree) {
		n := t.Read()
		if n == nil {
			return
		}
		walk(n.Left)
		out = append(out, n.Key)
		walk(n.Right)
	}
	walk(t)
	return out
}
