package pipefut

import (
	"sort"
	"sync"
	"testing"

	"pipefut/internal/workload"
)

func sortedUnique(xs []int) []int {
	ys := append([]int(nil), xs...)
	sort.Ints(ys)
	dst := ys[:0]
	for i, k := range ys {
		if i == 0 || k != dst[len(dst)-1] {
			dst = append(dst, k)
		}
	}
	return dst
}

func TestPoolSetOpsMatchGoRuntime(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()

	rng := workload.NewRNG(11)
	ka, kb := workload.OverlappingKeySets(rng, 500, 500, 0.4)

	a, b := pool.NewSetAsync(ka...), pool.NewSet(kb...)
	ga, gb := NewSet(ka...), NewSet(kb...)

	checks := []struct {
		name string
		got  *Set
		want *Set
	}{
		{"union", a.Union(b), ga.Union(gb)},
		{"subtract", a.Subtract(b), ga.Subtract(gb)},
		{"intersect", a.Intersect(b), ga.Intersect(gb)},
		{"insert", a.Insert(1 << 40), ga.Insert(1 << 40)},
		{"delete", a.Delete(ka[0]), ga.Delete(ka[0])},
	}
	for _, c := range checks {
		if !c.got.Equal(c.want) {
			t.Errorf("%s: pool result differs from goroutine-runtime result", c.name)
		}
	}
	if a.Len() != len(sortedUnique(ka)) {
		t.Errorf("pool set Len = %d, want %d", a.Len(), len(sortedUnique(ka)))
	}
}

// TestPoolMixedRuntimeOperands unions a pool set with a default
// (goroutine-runtime) set; the foreign operand must be adopted, not
// touched by pool workers as if it were theirs.
func TestPoolMixedRuntimeOperands(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()

	a := pool.NewSetAsync(1, 3, 5, 7)
	b := NewSetAsync(2, 3, 4)

	u := a.Union(b)
	want := []int{1, 2, 3, 4, 5, 7}
	got := u.Keys()
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	// And the symmetric direction: goroutine set adopting a pool set.
	u2 := b.Union(a)
	if !u2.Equal(u) {
		t.Errorf("b.Union(a) differs from a.Union(b)")
	}
}

// TestAsyncSetReadAfterShutdown is the regression test for the
// read-after-shutdown edge: an async set built on a pool must remain
// fully readable from plain goroutines after the pool is closed, because
// Close forces every in-flight future to completion before stopping the
// workers. Before the lifecycle fix, a Contains walking an unwritten
// edge of a shut-down runtime blocked forever.
func TestAsyncSetReadAfterShutdown(t *testing.T) {
	rng := workload.NewRNG(23)
	keys := workload.DistinctKeys(rng, 2000, 8000)

	pool := NewPool(4)
	s := pool.NewSetAsync(keys...)
	u := s.Union(pool.NewSetAsync(keys[:500]...))
	pool.Close() // forces completion before the workers stop

	want := sortedUnique(keys)
	got := u.Keys() // plain goroutine, runtime already shut down
	if len(got) != len(want) {
		t.Fatalf("Keys after Close: %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys after Close diverge at %d: got %d want %d", i, got[i], want[i])
		}
	}
	for _, k := range keys[:100] {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after Close, want true", k)
		}
	}
	if s.Contains(-1 << 40) {
		t.Fatal("Contains of absent key = true after Close")
	}

	// Reads racing Close from many goroutines must also complete: Close
	// waits for quiescence, and written cells stay readable afterwards.
	pool2 := NewPool(4)
	s2 := pool2.NewSetAsync(keys...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, k := range keys[g*50 : g*50+50] {
				if !s2.Contains(k) {
					t.Errorf("racing Contains(%d) = false, want true", k)
					return
				}
			}
		}(g)
	}
	pool2.Close()
	wg.Wait()
}
