package pipefut_test

import (
	"fmt"

	"pipefut"
)

// A future call returns a cell immediately; Read blocks until the value
// has been written.
func ExampleSpawn() {
	c := pipefut.Spawn(func() int { return 6 * 7 })
	fmt.Println(c.Read())
	// Output: 42
}

// Multi-cell futures write their results independently — one result can be
// consumed long before the other exists, which is what pipelines the
// paper's tree algorithms.
func ExampleSpawn2() {
	gate := make(chan struct{})
	early, late := pipefut.Spawn2(func(a, b *pipefut.Cell[string]) {
		a.Write("early")
		<-gate
		b.Write("late")
	})
	fmt.Println(early.Read()) // available immediately
	close(gate)
	fmt.Println(late.Read())
	// Output:
	// early
	// late
}

// Set operations are the paper's pipelined treap algorithms: they return
// immediately and materialize concurrently.
func ExampleSet_Union() {
	a := pipefut.NewSet(1, 2, 3)
	b := pipefut.NewSet(3, 4)
	fmt.Println(a.Union(b).Keys())
	// Output: [1 2 3 4]
}

func ExampleSet_Subtract() {
	a := pipefut.NewSet(1, 2, 3, 4)
	b := pipefut.NewSet(2, 4, 6)
	fmt.Println(a.Subtract(b).Keys())
	// Output: [1 3]
}

func ExampleSet_Intersect() {
	a := pipefut.NewSet(1, 2, 3, 4)
	b := pipefut.NewSet(2, 4, 6)
	fmt.Println(a.Intersect(b).Keys())
	// Output: [2 4]
}

// Measure runs a future-based computation in virtual time and reports its
// work and depth in the paper's DAG cost model. Here: a 3-stage pipeline
// where each stage adds 1 to its predecessor's output — the depth is the
// chain's critical path, not the sum of thread lifetimes.
func ExampleMeasure() {
	costs := pipefut.Measure(func(t *pipefut.Ctx) {
		a := pipefut.Fork(t, func(t *pipefut.Ctx) int {
			t.Step(10)
			return 1
		})
		b := pipefut.Fork(t, func(t *pipefut.Ctx) int {
			return pipefut.Touch(t, a) + 1
		})
		fmt.Println("result:", pipefut.Touch(t, b))
	})
	fmt.Println("work:", costs.Work, "depth:", costs.Depth, "linear:", costs.Linear())
	// Output:
	// result: 2
	// work: 16 depth: 15 linear: true
}

// NewSetAsync builds large sets concurrently by divide-and-conquer
// pipelined unions: the call returns immediately and queries run against
// the in-flight structure.
func ExampleNewSetAsync() {
	keys := make([]int, 100000)
	for i := range keys {
		keys[i] = i * 3
	}
	s := pipefut.NewSetAsync(keys...)
	fmt.Println(s.Contains(99), s.Contains(100)) // while still building
	// Output: true false
}

// Sort is the Section 5 pipelined tree mergesort, run on goroutines.
func ExampleSort() {
	fmt.Println(pipefut.Sort([]int{5, 3, 9, 1, 3}))
	// Output: [1 3 5 9]
}
