// Benchmarks, one per experiment of DESIGN.md. The cost-model benchmarks
// report the paper's metrics (depth and work in the DAG model) through
// b.ReportMetric alongside wall-clock time; the paralg benchmarks measure
// real future-based execution against the sequential baselines.
//
//	go test -bench=. -benchmem
package pipefut

import (
	"sort"
	"testing"

	"pipefut/internal/bench"
	"pipefut/internal/clomachine"
	"pipefut/internal/core"
	"pipefut/internal/costalg"
	"pipefut/internal/machine"
	"pipefut/internal/ml"
	"pipefut/internal/paralg"
	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
	"pipefut/internal/t26"
	"pipefut/internal/workload"
)

const benchN = 1 << 12 // cost-model input size for the depth benchmarks

func reportCosts(b *testing.B, pipe, nopipe core.Costs) {
	b.ReportMetric(float64(pipe.Depth), "depth(pipe)")
	b.ReportMetric(float64(nopipe.Depth), "depth(nopipe)")
	b.ReportMetric(float64(pipe.Work), "work(pipe)")
}

// BenchmarkMergeDepth — E-T3.1 (Theorem 3.1): pipelined vs non-pipelined
// tree merge in the cost model.
func BenchmarkMergeDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.MergeCosts(42, benchN, benchN)
	}
	reportCosts(b, p, np)
}

// BenchmarkUnionDepth — E-C3.6 (Corollary 3.6 / Theorem 3.7).
func BenchmarkUnionDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.UnionCosts(42, benchN, benchN, 0.25)
	}
	reportCosts(b, p, np)
}

// BenchmarkDiffDepth — E-C3.12 (Corollary 3.12).
func BenchmarkDiffDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.DiffCosts(42, benchN, benchN, 0.5)
	}
	reportCosts(b, p, np)
}

// BenchmarkT26InsertDepth — E-T3.13 (Theorem 3.13).
func BenchmarkT26InsertDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.T26Costs(42, benchN, benchN)
	}
	reportCosts(b, p, np)
}

// BenchmarkFig1ProducerConsumer — E-FIG1 (Figure 1).
func BenchmarkFig1ProducerConsumer(b *testing.B) {
	var p, ph core.Costs
	for i := 0; i < b.N; i++ {
		p, ph, _ = bench.Fig1Costs(benchN)
	}
	b.ReportMetric(float64(p.Depth), "depth(pipe)")
	b.ReportMetric(float64(ph.Depth), "depth(phased)")
}

// BenchmarkFig2Quicksort — E-FIG2 (Figure 2): both variants Θ(n) depth.
func BenchmarkFig2Quicksort(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.Fig2Costs(42, benchN)
	}
	reportCosts(b, p, np)
}

// BenchmarkMergesortDepth — E-MS (Section 5 conjecture).
func BenchmarkMergesortDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np, _ = bench.MergesortCosts(42, benchN)
	}
	reportCosts(b, p, np)
}

// BenchmarkRebalance — E-REBAL (Section 3.1 end).
func BenchmarkRebalance(b *testing.B) {
	rng := workload.NewRNG(42)
	ka, kb := workload.DisjointKeySets(rng, benchN, benchN)
	sort.Ints(ka)
	sort.Ints(kb)
	merged := seqtree.Merge(seqtree.FromSortedBalanced(ka), seqtree.FromSortedBalanced(kb))
	size := seqtree.Size(merged)
	var costs core.Costs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(nil)
		ctx := eng.NewCtx()
		ann := costalg.Annotate(ctx, costalg.FromSeqTree(eng, merged))
		costalg.CompletionTime(costalg.Rebalance(ctx, ann, size))
		costs = eng.Finish()
	}
	b.ReportMetric(float64(costs.Depth), "depth")
	b.ReportMetric(float64(costs.Work), "work")
}

// BenchmarkMachineSchedule — E-L4.1 (Lemma 4.1): greedy schedule of a real
// trace on 64 virtual processors.
func BenchmarkMachineSchedule(b *testing.B) {
	traces := bench.TracedAlgorithms(42, 1<<10)
	tr := traces["union"]
	var r machine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		r, err = machine.Run(tr, 64, machine.Stack)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Steps), "steps")
	b.ReportMetric(r.Utilization(), "util")
	if !r.GreedyOK() {
		b.Fatal("Brent bound violated")
	}
}

// --- real-execution benchmarks (E-SPEED / A-GRAIN) ------------------------

func parInputs(n int) (t1, t2 paralg.Tree, u1, u2 paralg.Tree, sa, sb *seqtree.Node, ta, tb *seqtreap.Node) {
	rng := workload.NewRNG(42)
	ka, kb := workload.DisjointKeySets(rng, n, n)
	sort.Ints(ka)
	sort.Ints(kb)
	sa, sb = seqtree.FromSortedBalanced(ka), seqtree.FromSortedBalanced(kb)
	ua, ub := workload.OverlappingKeySets(rng, n, n, 0.25)
	ta, tb = seqtreap.FromKeys(ua), seqtreap.FromKeys(ub)
	return paralg.FromSeqTree(sa), paralg.FromSeqTree(sb),
		paralg.FromSeqTreap(ta), paralg.FromSeqTreap(tb), sa, sb, ta, tb
}

// BenchmarkParMerge — real future-based merge on goroutines.
func BenchmarkParMerge(b *testing.B) {
	t1, t2, _, _, _, _, _, _ := parInputs(1 << 15)
	cfg := paralg.DefaultConfig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paralg.Wait(cfg.Merge(t1, t2))
	}
}

// BenchmarkSeqMerge — the sequential baseline for BenchmarkParMerge.
func BenchmarkSeqMerge(b *testing.B) {
	_, _, _, _, sa, sb, _, _ := parInputs(1 << 15)
	for i := 0; i < b.N; i++ {
		seqtree.Merge(sa, sb)
	}
}

// BenchmarkParUnion — real future-based treap union on goroutines.
func BenchmarkParUnion(b *testing.B) {
	_, _, u1, u2, _, _, _, _ := parInputs(1 << 15)
	cfg := paralg.DefaultConfig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paralg.Wait(cfg.Union(u1, u2))
	}
}

// BenchmarkSeqUnion — the sequential baseline for BenchmarkParUnion.
func BenchmarkSeqUnion(b *testing.B) {
	_, _, _, _, _, _, ta, tb := parInputs(1 << 15)
	for i := 0; i < b.N; i++ {
		seqtreap.Union(ta, tb)
	}
}

// BenchmarkParMergeGrain — A-GRAIN: one point of the grain ablation per
// sub-benchmark.
func BenchmarkParMergeGrain(b *testing.B) {
	t1, t2, _, _, _, _, _, _ := parInputs(1 << 15)
	for _, d := range []int{0, 8, 16} {
		cfg := paralg.Config{SpawnDepth: d}
		b.Run(map[int]string{0: "seq", 8: "d8", 16: "d16"}[d], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				paralg.Wait(cfg.Merge(t1, t2))
			}
		})
	}
}

// BenchmarkSetUnion — the public API end to end.
func BenchmarkSetUnion(b *testing.B) {
	rng := workload.NewRNG(42)
	ka := workload.DistinctKeys(rng, 1<<14, 1<<20)
	kb := workload.DistinctKeys(rng, 1<<14, 1<<20)
	sa, sb := NewSet(ka...), NewSet(kb...)
	sa.Wait()
	sb.Wait()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := sa.Union(sb)
		u.Wait()
	}
}

// BenchmarkIntersectDepth — X-INTER extension experiment.
func BenchmarkIntersectDepth(b *testing.B) {
	var p, np core.Costs
	for i := 0; i < b.N; i++ {
		p, np = bench.IntersectCosts(42, benchN, benchN, 0.5)
	}
	reportCosts(b, p, np)
}

// BenchmarkParT26BulkInsert — real 2-6 tree bulk insertion on goroutines.
func BenchmarkParT26BulkInsert(b *testing.B) {
	rng := workload.NewRNG(42)
	all := workload.DistinctKeys(rng, 1<<15, 1<<20)
	base := t26.FromKeys(all[:1<<14])
	ins := append([]int(nil), all[1<<14:]...)
	sort.Ints(ins)
	levels := workload.WellSeparatedLevels(ins)
	root := paralg.FromSeqT26(base)
	cfg := paralg.DefaultConfig
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paralg.WaitT26(cfg.T26BulkInsert(root, levels))
	}
}

// BenchmarkSeqT26BulkInsert — the sequential baseline.
func BenchmarkSeqT26BulkInsert(b *testing.B) {
	rng := workload.NewRNG(42)
	all := workload.DistinctKeys(rng, 1<<15, 1<<20)
	base := t26.FromKeys(all[:1<<14])
	ins := all[1<<14:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t26.BulkInsert(base, ins)
	}
}

// BenchmarkParQuicksort — Figure 2 on real goroutines.
func BenchmarkParQuicksort(b *testing.B) {
	rng := workload.NewRNG(42)
	xs := rng.Perm(1 << 13)
	cfg := paralg.Config{SpawnDepth: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := paralg.FromSlice(xs)
		_ = paralg.ToSlice(cfg.Quicksort(l, paralg.FromSlice(nil)))
	}
}

// BenchmarkOnlineMachine — X-ONLINE: the closure machine running the
// pipelined merge program on 64 virtual processors.
func BenchmarkOnlineMachine(b *testing.B) {
	rng := workload.NewRNG(42)
	ka, kb := workload.DisjointKeySets(rng, 1<<11, 1<<11)
	sort.Ints(ka)
	sort.Ints(kb)
	var r clomachine.Result
	for i := 0; i < b.N; i++ {
		prog, _ := clomachine.Merge(clomachine.TreeFromKeys(ka), clomachine.TreeFromKeys(kb))
		r = clomachine.Run(prog, 64)
		if !r.OK() {
			b.Fatal("bound violated")
		}
	}
	b.ReportMetric(float64(r.Steps), "steps")
	b.ReportMetric(float64(r.Suspensions), "suspensions")
}

// BenchmarkMLMerge — X-ML: the paper's Figure 3 source interpreted under
// the cost semantics.
func BenchmarkMLMerge(b *testing.B) {
	prog := ml.ParsePaper()
	rng := workload.NewRNG(42)
	ka, kb := workload.DisjointKeySets(rng, 1<<10, 1<<10)
	sort.Ints(ka)
	sort.Ints(kb)
	t1 := seqtree.FromSortedBalanced(ka)
	t2 := seqtree.FromSortedBalanced(kb)
	var costs core.Costs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := core.NewEngine(nil)
		in := ml.NewInterp(prog, eng)
		v, err := in.Apply(eng.NewCtx(), "merge", ml.TreeValue(t1), ml.TreeValue(t2))
		if err != nil {
			b.Fatal(err)
		}
		ml.Deep(v)
		costs = eng.Finish()
	}
	b.ReportMetric(float64(costs.Depth), "depth")
	b.ReportMetric(float64(costs.Work), "work")
}

// BenchmarkFutureCell — the raw future primitive: spawn + read.
func BenchmarkFutureCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := Spawn(func() int { return i })
		_ = c.Read()
	}
}
