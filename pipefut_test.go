package pipefut

import (
	"sort"
	"testing"
	"testing/quick"

	"pipefut/internal/workload"
)

func TestSpawnAndRead(t *testing.T) {
	c := Spawn(func() int { return 6 * 7 })
	if c.Read() != 42 {
		t.Fatal("spawn result wrong")
	}
}

func TestSpawn2And3(t *testing.T) {
	a, b := Spawn2(func(x, y *Cell[int]) { y.Write(2); x.Write(1) })
	if a.Read() != 1 || b.Read() != 2 {
		t.Fatal("spawn2 wrong")
	}
	p, q, r := Spawn3(func(x, y, z *Cell[string]) {
		x.Write("a")
		y.Write("b")
		z.Write("c")
	})
	if p.Read()+q.Read()+r.Read() != "abc" {
		t.Fatal("spawn3 wrong")
	}
}

func TestNewCellDone(t *testing.T) {
	c := NewCell[int]()
	go c.Write(5)
	if c.Read() != 5 {
		t.Fatal("cell wrong")
	}
	if Done("x").Read() != "x" {
		t.Fatal("done wrong")
	}
}

func TestMeasure(t *testing.T) {
	costs := Measure(func(tc *Ctx) {
		tc.Step(1)
		c := Fork(tc, func(tc *Ctx) int { tc.Step(5); return 42 })
		if Touch(tc, c) != 42 {
			t.Error("touch value wrong")
		}
	})
	// 1 step + 1 fork + 5 body + 1 write + 1 touch = 9 work.
	if costs.Work != 9 {
		t.Fatalf("work = %d, want 9", costs.Work)
	}
	// Critical path: step(1) fork(2) body(3..7) write(8) touch(9).
	if costs.Depth != 9 {
		t.Fatalf("depth = %d, want 9", costs.Depth)
	}
	if !costs.Linear() {
		t.Fatal("must be linear")
	}
}

func TestMeasureWrite(t *testing.T) {
	costs := Measure(func(tc *Ctx) {
		a, b := Spawn2MCells(tc)
		_ = Touch(tc, a)
		_ = Touch(tc, b)
	})
	if costs.Work == 0 {
		t.Fatal("no work recorded")
	}
}

// Spawn2MCells is a small helper exercising Write on measured cells.
func Spawn2MCells(tc *Ctx) (*MCell[int], *MCell[int]) {
	c1 := Fork(tc, func(tc *Ctx) int { return 1 })
	c2 := Fork(tc, func(tc *Ctx) int { return 2 })
	return c1, c2
}

func setOf(keys []int) map[int]bool {
	m := map[int]bool{}
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func TestSetBasics(t *testing.T) {
	s := NewSet(3, 1, 2, 3)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if got := s.Keys(); !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("keys = %v", got)
	}
	if !s.Contains(2) || s.Contains(9) {
		t.Fatal("contains wrong")
	}
	s2 := s.Insert(9)
	if !s2.Contains(9) || s.Contains(9) {
		t.Fatal("insert must be persistent")
	}
	s3 := s2.Delete(1)
	if s3.Contains(1) || s3.Len() != 3 {
		t.Fatal("delete wrong")
	}
	s.Wait()
}

func TestSetOpsMatchMapOracleProperty(t *testing.T) {
	f := func(seed uint16, n8, m8, ov uint8) bool {
		n, m := int(n8%80)+1, int(m8%80)+1
		rng := workload.NewRNG(uint64(seed))
		ka, kb := workload.OverlappingKeySets(rng, n, m, float64(ov%4)/4)
		a, b := NewSet(ka...), NewSet(kb...)

		u := a.Union(b).Keys()
		d := a.Subtract(b).Keys()

		wantU := setOf(ka)
		for _, k := range kb {
			wantU[k] = true
		}
		wantD := map[int]bool{}
		inB := setOf(kb)
		for _, k := range ka {
			if !inB[k] {
				wantD[k] = true
			}
		}
		if len(u) != len(wantU) || len(d) != len(wantD) {
			return false
		}
		for _, k := range u {
			if !wantU[k] {
				return false
			}
		}
		for _, k := range d {
			if !wantD[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(1, 2, 3, 4, 5)
	b := NewSet(4, 5, 6, 7)
	got := a.Intersect(b).Keys()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("intersect = %v", got)
	}
	// (A \ B) ∪ (A ∩ B) = A.
	back := a.Subtract(b).Union(a.Intersect(b))
	if !back.Equal(a) {
		t.Fatal("set algebra identity failed")
	}
}

func TestSetEqualIgnoresConstruction(t *testing.T) {
	a := NewSet(1, 2, 3).Union(NewSet(4, 5))
	b := NewSet(5, 4, 3).Union(NewSet(1, 2))
	if !a.Equal(b) {
		t.Fatal("equal contents must compare equal")
	}
	if a.Equal(NewSet(1)) {
		t.Fatal("different sets compared equal")
	}
	if a.Equal(NewSet(1, 2, 3, 4, 6)) {
		t.Fatal("same-size different sets compared equal")
	}
}

func TestNewSetAsync(t *testing.T) {
	rng := workload.NewRNG(11)
	keys := workload.DistinctKeys(rng, 3000, 100000)
	async := NewSetAsync(keys...)
	// Queries work against the in-flight set.
	if !async.Contains(keys[0]) {
		t.Fatal("missing key during construction")
	}
	sync := NewSet(keys...)
	if !async.Equal(sync) {
		t.Fatal("async and sync construction differ")
	}
	if NewSetAsync().Len() != 0 {
		t.Fatal("empty async set wrong")
	}
}

func TestSetWithSpawnDepth(t *testing.T) {
	a := NewSet(1, 2, 3).WithSpawnDepth(0) // sequential
	b := NewSet(3, 4)
	if got := a.Union(b).Keys(); len(got) != 4 {
		t.Fatalf("keys = %v", got)
	}
}

func TestContainsOnInFlightSet(t *testing.T) {
	rng := workload.NewRNG(7)
	ka := workload.DistinctKeys(rng, 5000, 1<<20)
	kb := workload.DistinctKeys(rng, 5000, 1<<20)
	u := NewSet(ka...).Union(NewSet(kb...))
	// Query immediately — reads block only along the search path.
	if !u.Contains(ka[0]) || !u.Contains(kb[0]) {
		t.Fatal("contains on in-flight set wrong")
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed uint16, n8 uint8) bool {
		n := int(n8 % 200)
		rng := workload.NewRNG(uint64(seed))
		xs := workload.DistinctKeys(rng, n, 4*n+4)
		got := Sort(xs)
		want := append([]int{}, xs...)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDeduplicates(t *testing.T) {
	got := Sort([]int{3, 1, 3, 2, 2})
	want := []int{1, 2, 3}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	if Sort(nil) != nil {
		t.Fatal("empty sort must be nil")
	}
}
