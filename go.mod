module pipefut

go 1.24
