// A bulk dictionary built on pipelined treap set operations — the workload
// the paper's introduction motivates: maintaining a dynamic dictionary
// under batch inserts and batch deletes, where each batch is a single
// pipelined Union or Subtract instead of m sequential updates.
//
// The example simulates an inverted-index maintenance loop: batches of
// document IDs are added and retired, with queries running concurrently
// against in-flight results.
//
//	go run ./examples/setops
package main

import (
	"fmt"
	"time"

	"pipefut"
	"pipefut/internal/workload"
)

func main() {
	rng := workload.NewRNG(2026)

	// Start with a base index of a quarter-million document IDs.
	const base = 1 << 18
	fmt.Printf("building base index of %d ids ...\n", base)
	start := time.Now()
	index := pipefut.NewSet(workload.DistinctKeys(rng, base, 8*base)...).WithSpawnDepth(8)
	index.Wait()
	fmt.Printf("  built in %v\n", time.Since(start))

	// Apply alternating insert/delete batches. Each batch is one
	// pipelined set operation; successive operations pipeline into each
	// other because results are consumed as they materialize.
	const batches = 8
	const batchSize = 1 << 13
	start = time.Now()
	var retired *pipefut.Set
	for i := 0; i < batches; i++ {
		add := pipefut.NewSet(workload.DistinctKeys(rng, batchSize, 8*base)...)
		del := pipefut.NewSet(workload.DistinctKeys(rng, batchSize, 8*base)...)
		index = index.Union(add).Subtract(del)
		if retired == nil {
			retired = del
		} else {
			retired = retired.Union(del)
		}
	}
	// Queries can run against the in-flight index — reads block only
	// along their search path, not on the whole batch.
	probe := workload.DistinctKeys(rng, 4, 8*base)
	for _, id := range probe {
		fmt.Printf("  in-flight query Contains(%d) = %v\n", id, index.Contains(id))
	}
	index.Wait()
	fmt.Printf("applied %d batches of ±%d in %v (pipelined)\n",
		batches, batchSize, time.Since(start))

	fmt.Printf("final index size: %d; retired pool: %d\n", index.Len(), retired.Len())

	// Sanity: nothing retired in the last batch survives.
	deleted := retired.Subtract(index)
	fmt.Printf("retired ids absent from index: %d of %d\n", deleted.Len(), retired.Len())
}
