// The full analysis workflow of the paper, end to end on one algorithm:
//
//  1. run the pipelined treap union in the cost model, measuring work and
//     depth in the DAG model of Section 2 (and auditing linearity, §4);
//
//  2. record the computation DAG and cross-check the depth against an
//     independent critical-path computation;
//
//  3. execute the greedy stack schedule of Lemma 4.1 on p virtual
//     processors and verify steps ≤ ⌈w/p⌉ + d;
//
//  4. run the same algorithm for real on goroutines and validate the
//     result against the sequential oracle.
//
//     go run ./examples/analysis -n 4096
package main

import (
	"flag"
	"fmt"
	"os"

	"pipefut/internal/core"
	"pipefut/internal/costalg"
	"pipefut/internal/machine"
	"pipefut/internal/paralg"
	"pipefut/internal/seqtreap"
	"pipefut/internal/trace"
	"pipefut/internal/workload"
)

func main() {
	n := flag.Int("n", 4096, "treap sizes")
	flag.Parse()

	rng := workload.NewRNG(7)
	ka, kb := workload.OverlappingKeySets(rng, *n, *n, 0.25)
	ta, tb := seqtreap.FromKeys(ka), seqtreap.FromKeys(kb)

	// 1+2: measure in the cost model, recording the DAG.
	tr := trace.New()
	eng := core.NewEngine(tr)
	r := costalg.Union(eng.NewCtx(), costalg.FromSeqTreap(eng, ta), costalg.FromSeqTreap(eng, tb))
	completion := costalg.CompletionTime(r)
	costs := eng.Finish()

	fmt.Printf("== 1. cost model (Section 2) ==\n")
	fmt.Printf("union of two %d-key treaps: work=%d depth=%d parallelism=%.0f\n",
		*n, costs.Work, costs.Depth, costs.AvgParallelism())
	fmt.Printf("result fully materialized at t=%d; linear (EREW-safe): %v\n", completion, costs.Linear())

	fmt.Printf("\n== 2. recorded DAG cross-check ==\n")
	s := tr.Summary()
	fmt.Printf("trace: %v\n", s)
	if s.Depth != costs.Depth {
		fmt.Fprintln(os.Stderr, "DEPTH MISMATCH — engine and trace disagree")
		os.Exit(1)
	}
	fmt.Printf("critical path over the recorded DAG == engine depth ✓\n")

	fmt.Printf("\n== 3. Lemma 4.1 greedy schedule ==\n")
	fmt.Printf("%8s %10s %10s %10s %8s\n", "p", "steps", "⌈w/p⌉+d", "speedup", "util")
	for p := 1; p <= 4096; p *= 8 {
		res, err := machine.Run(tr, p, machine.Stack)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok := " "
		if !res.GreedyOK() {
			ok = " BOUND VIOLATED"
		}
		fmt.Printf("%8d %10d %10d %10.1f %8.3f%s\n",
			p, res.Steps, res.BrentBound, res.Speedup(), res.Utilization(), ok)
	}

	fmt.Printf("\n== 4. real execution on goroutines ==\n")
	got := paralg.ToSeqTreap(paralg.DefaultConfig.Union(paralg.FromSeqTreap(ta), paralg.FromSeqTreap(tb)))
	want := seqtreap.Union(ta, tb)
	if !seqtreap.Equal(got, want) {
		fmt.Fprintln(os.Stderr, "parallel result differs from oracle")
		os.Exit(1)
	}
	fmt.Printf("goroutine union == sequential oracle (structurally identical treaps, %d keys) ✓\n",
		seqtreap.Size(got))
}
