// Quickstart for pipefut: futures, pipelined set operations, and the cost
// model, in ~80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"pipefut"
)

func main() {
	// --- 1. Futures -----------------------------------------------------
	// A future call returns immediately with a cell; reading the cell
	// blocks until the value is written. This is the language construct
	// the paper builds on (Section 2).
	cell := pipefut.Spawn(func() int {
		sum := 0
		for i := 1; i <= 1_000_000; i++ {
			sum += i
		}
		return sum
	})
	fmt.Println("spawned a future; doing other work ...")
	fmt.Println("future result:", cell.Read())

	// Multi-cell futures write their results independently — one can be
	// ready long before the other, which is what makes the paper's
	// dynamic pipelines possible.
	early, late := pipefut.Spawn2(func(a, b *pipefut.Cell[string]) {
		a.Write("early")
		// ... a lot of work later ...
		b.Write("late")
	})
	fmt.Println(early.Read(), "then", late.Read())

	// --- 2. Pipelined set operations ------------------------------------
	// Sets are treaps whose edges are future cells. Union and Subtract
	// are the paper's pipelined parallel algorithms (Sections 3.2–3.3):
	// they return immediately and materialize concurrently.
	evens := make([]int, 0, 500)
	threes := make([]int, 0, 334)
	for i := 0; i < 1000; i += 2 {
		evens = append(evens, i)
	}
	for i := 0; i < 1000; i += 3 {
		threes = append(threes, i)
	}
	a := pipefut.NewSet(evens...)
	b := pipefut.NewSet(threes...)

	union := a.Union(b)                    // evens ∪ multiples of 3
	sixes := a.Subtract(union.Subtract(b)) // evens ∩ multiples of 3 = multiples of 6

	// Queries work while results are still being computed: reads block
	// only along the search path.
	fmt.Println("union has 6?", union.Contains(6), " size:", union.Len())
	fmt.Println("multiples of 6 up to 1000:", sixes.Len())

	// --- 3. The cost model ----------------------------------------------
	// Measure runs a future-based computation in virtual time and
	// reports its work and depth in the paper's DAG model.
	costs := pipefut.Measure(func(t *pipefut.Ctx) {
		// A tiny pipeline: a producer thread and a consumer thread
		// overlapped through future cells.
		type cons struct {
			head int
			tail *pipefut.MCell[any]
		}
		var produce func(t *pipefut.Ctx, n int) *pipefut.MCell[any]
		produce = func(t *pipefut.Ctx, n int) *pipefut.MCell[any] {
			return pipefut.Fork(t, func(t *pipefut.Ctx) any {
				if n == 0 {
					return nil
				}
				t.Step(1)
				return &cons{head: n, tail: produce(t, n-1)}
			})
		}
		l := produce(t, 100)
		for {
			v := pipefut.Touch(t, l)
			if v == nil {
				break
			}
			t.Step(1) // consume
			l = v.(*cons).tail
		}
	})
	fmt.Printf("producer/consumer of 100: work=%d depth=%d parallelism=%.1f linear=%v\n",
		costs.Work, costs.Depth, costs.AvgParallelism(), costs.Linear())
}
