// The pipelined tree mergesort of the paper's conclusion (Section 5): a
// mergesort whose merges are the pipelined tree merge of Section 3.1,
// giving three levels of pipelining. The paper conjectures its expected
// depth is close to O(lg n) — perhaps O(lg n · lg lg n) — versus O(lg³ n)
// without pipelining. This example sorts for real on goroutines, then
// measures the depth in the cost model and prints the conjecture columns.
//
//	go run ./examples/mergesort -n 65536
package main

import (
	"flag"
	"fmt"
	"math"
	"sort"
	"time"

	"pipefut"
	"pipefut/internal/core"
	"pipefut/internal/costalg"
	"pipefut/internal/workload"
)

func main() {
	n := flag.Int("n", 1<<16, "elements to sort")
	flag.Parse()

	rng := workload.NewRNG(7)
	xs := rng.Perm(*n)

	// Real run on goroutines via the public API.
	start := time.Now()
	sorted := pipefut.Sort(xs)
	elapsed := time.Since(start)
	if !sort.IntsAreSorted(sorted) || len(sorted) != *n {
		panic("mergesort produced wrong output")
	}
	fmt.Printf("sorted %d ints with future-based mergesort in %v\n", *n, elapsed)

	// Cost-model sweep: the conjecture columns.
	fmt.Println("\ncost model (expected depth, one instance per size):")
	fmt.Printf("%6s %10s %10s %16s %10s\n", "lg n", "depth", "d/lg n", "d/(lg n·lglg n)", "d/lg² n")
	for e := 8; e <= 16 && (1<<e) <= *n; e += 2 {
		m := 1 << e
		eng := core.NewEngine(nil)
		r := costalg.Mergesort(eng.NewCtx(), rng.Perm(m))
		costalg.CompletionTime(r)
		c := eng.Finish()
		lg := math.Log2(float64(m))
		fmt.Printf("%6d %10d %10.1f %16.2f %10.2f\n",
			e, c.Depth,
			float64(c.Depth)/lg,
			float64(c.Depth)/(lg*math.Log2(lg)),
			float64(c.Depth)/(lg*lg))
	}
	fmt.Println("\nreading: a flat d/(lg n·lglg n) column with slowly climbing d/lg n supports the conjecture")
}
