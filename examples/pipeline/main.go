// The producer/consumer pipeline of Figure 1 of "Pipelining with Futures",
// run both for real (goroutines + future cells) and in the cost model, and
// optionally dumped as a DOT drawing of the computation DAG.
//
//	go run ./examples/pipeline            # run + measure
//	go run ./examples/pipeline -n 12 -dot # print the Figure 1 DAG as DOT
package main

import (
	"flag"
	"fmt"
	"os"

	"pipefut"
	"pipefut/internal/core"
	"pipefut/internal/costalg"
	"pipefut/internal/trace"
)

// node is a real (goroutine-built) cons cell: the list materializes element
// by element, and the consumer chases it.
type node struct {
	head int
	tail *pipefut.Cell[*node]
}

func produce(n int) *pipefut.Cell[*node] {
	return pipefut.Spawn(func() *node {
		if n < 0 {
			return nil
		}
		return &node{head: n, tail: produce(n - 1)}
	})
}

func consume(l *pipefut.Cell[*node]) int {
	sum := 0
	for {
		v := l.Read()
		if v == nil {
			return sum
		}
		sum += v.head
		l = v.tail
	}
}

func main() {
	n := flag.Int("n", 100000, "list length")
	dot := flag.Bool("dot", false, "print the computation DAG as Graphviz DOT (use small -n)")
	flag.Parse()

	if *dot {
		tr := trace.New()
		eng := core.NewEngine(tr)
		ctx := eng.NewCtx()
		costalg.Consume(ctx, costalg.Produce(ctx, *n))
		eng.Finish()
		if err := tr.WriteDOT(os.Stdout, "figure1"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	// Real execution: each element is produced by its own goroutine; the
	// consumer overlaps with production through the future cells.
	fmt.Printf("real run: sum(0..%d) = %d\n", *n, consume(produce(*n)))

	// Measured execution: the exact work and depth of the same program
	// in the paper's DAG model, pipelined vs phased.
	pipe, phased, _ := fig1Costs(*n)
	fmt.Printf("cost model (pipelined):  work=%d depth=%d\n", pipe.Work, pipe.Depth)
	fmt.Printf("cost model (produce-then-consume): depth=%d (%.2fx deeper)\n",
		phased.Depth, float64(phased.Depth)/float64(pipe.Depth))
}

func fig1Costs(n int) (pipe, phased core.Costs, sum int64) {
	eng := core.NewEngine(nil)
	ctx := eng.NewCtx()
	sum = costalg.Consume(ctx, costalg.Produce(ctx, n))
	pipe = eng.Finish()

	eng2 := core.NewEngine(nil)
	ctx2 := eng2.NewCtx()
	l := costalg.Produce(ctx2, n)
	ctx2.AdvanceTo(costalg.ListCompletionTime(l))
	costalg.Consume(ctx2, l)
	phased = eng2.Finish()
	return pipe, phased, sum
}
