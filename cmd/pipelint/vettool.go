package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"

	"pipefut/internal/analysis"
)

// vetConfig mirrors the JSON configuration the go command writes for each
// vet invocation (cmd/go/internal/work's vetConfig; the same contract
// x/tools' unitchecker consumes). Fields pipelint does not need are kept
// for documentation value and future use.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string // source import path → canonical path
	PackageFile map[string]string // canonical path → export data file
	Standard    map[string]bool

	PackageVetx map[string]string // dep → vetx facts file (unused: no facts)
	VetxOnly    bool              // only facts wanted; we produce none
	VetxOutput  string            // where to write this package's facts

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by a go vet .cfg file.
// Exit codes follow the vet protocol: 0 clean, 2 diagnostics found,
// 1 operational failure.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipelint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "pipelint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// The driver schedules a run over every dependency to collect facts
	// (VetxOnly). The pipelint analyzers are factless, so those runs are
	// no-ops; an absent VetxOutput file is permitted by the driver.
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	diags, err := checkPackage(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile, analysis.All())
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pipelint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
