// Command pipelint runs the pipefut futures-correctness analyzer suite
// (internal/analysis): doublewrite, neverwritten, leakedfork, nonlinear.
// These passes check the static preconditions behind the paper's cost and
// machine bounds — single-assignment cells, every write capability
// exercised, no dead speculative forks, linear touch patterns (§4,
// Lemma 4.1).
//
// It runs in two modes:
//
//	pipelint ./...                      # standalone, over go list patterns
//	go vet -vettool=$(which pipelint) ./...   # as a go vet tool
//
// The vettool mode implements the go vet driver protocol (the same
// contract as x/tools' unitchecker): a -V=full version handshake, a
// -flags enumeration, and per-package .cfg invocations whose dependency
// types are read from compiler export data. The implementation is
// standard-library only; see internal/analysis for the framework.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"pipefut/internal/analysis"
	"pipefut/internal/analysis/load"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		// No exposed analyzer flags; the driver only needs valid JSON.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pipelint [packages]\n"+
		"   or: go vet -vettool=$(which pipelint) [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full handshake: the go command derives
// the tool's cache-busting ID from the trailing buildID field, so it is a
// content hash of the executable (matching unitchecker's behaviour).
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil)[:12])
}

// standalone lists, loads, and analyzes the packages matching the
// patterns, printing diagnostics to stderr. Exit code 1 means findings,
// 2 means operational failure.
func standalone(patterns []string) int {
	pkgs, err := load.GoList(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipelint:", err)
		return 2
	}

	// Export data of the whole graph, for fast dependency importing.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	found := 0
	failed := false
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.GoFiles) == 0 {
			// go list -e turns an unresolvable pattern into a stub
			// package carrying the error; surface it instead of
			// silently analyzing nothing.
			if p.Error != nil {
				fmt.Fprintf(os.Stderr, "pipelint: %s: %s\n", p.ImportPath, p.Error.Err)
				failed = true
			}
			continue
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "pipelint: skipping %s (cgo)\n", p.ImportPath)
			continue
		}
		diags, err := checkPackage(fset, p.ImportPath, p.Dir, p.AbsFiles(), nil, exports)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipelint: %s: %v\n", p.ImportPath, err)
			failed = true
			continue
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
			found++
		}
	}
	switch {
	case failed:
		return 2
	case found > 0:
		return 1
	}
	return 0
}

// checkPackage typechecks one package — via export data when available,
// falling back to typechecking dependencies from source — and runs the
// analyzer suite over it.
func checkPackage(fset *token.FileSet, pkgPath, dir string, files []string, importMap, exports map[string]string) ([]analysis.Diagnostic, error) {
	pkg, err := load.ParseAndCheck(fset, pkgPath, files, load.ExportImporter(fset, importMap, exports))
	if err != nil {
		// Export data may be missing (e.g. go list -export failed for a
		// dependency) or in an unreadable format; retry from source.
		var srcErr error
		pkg, srcErr = load.ParseAndCheck(fset, pkgPath, files, load.SourceImporter(fset, dir))
		if srcErr != nil {
			return nil, fmt.Errorf("typecheck failed: %v (source fallback: %v)", err, srcErr)
		}
	}
	return analysis.Run(analysis.All(), fset, pkg.Files, pkg.Types, pkg.Info)
}
