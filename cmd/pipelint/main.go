// Command pipelint runs the pipefut futures-correctness analyzer suite
// (internal/analysis): doublewrite, neverwritten, leakedfork, nonlinear.
// These passes check the static preconditions behind the paper's cost and
// machine bounds — single-assignment cells, every write capability
// exercised, no dead speculative forks, linear touch patterns (§4,
// Lemma 4.1).
//
// It runs in two modes:
//
//	pipelint ./...                      # standalone, over go list patterns
//	go vet -vettool=$(which pipelint) ./...   # as a go vet tool
//
// The vettool mode implements the go vet driver protocol (the same
// contract as x/tools' unitchecker): a -V=full version handshake, a
// -flags enumeration, and per-package .cfg invocations whose dependency
// types are read from compiler export data. The implementation is
// standard-library only; see internal/analysis for the framework.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"pipefut/internal/analysis"
	"pipefut/internal/analysis/flow"
	"pipefut/internal/analysis/load"
	"pipefut/internal/verdict"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet handshake)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet handshake)")
	flowFlag := flag.Bool("flow", false, "also run the flow-sensitive analyzers (flowlinear, mustwrite, deadcycle); standalone mode only")
	jsonFlag := flag.Bool("json", false, "write diagnostics to stdout as a JSON array instead of text on stderr")
	verdictsFlag := flag.Bool("verdicts", false, "emit the flow-class verdict manifest (internal/verdict) as JSON to stdout and exit; the optional argument is the repo root (default .)")
	budgetFlag := flag.Bool("budget", false, "print the per-entry-point cell-allocation budget table (human-readable) and exit; the optional argument is the repo root (default .)")
	flag.Usage = usage
	flag.Parse()

	if *versionFlag != "" {
		printVersion()
		return
	}
	if *flagsFlag {
		// No exposed analyzer flags; the driver only needs valid JSON.
		fmt.Println("[]")
		return
	}

	if *verdictsFlag || *budgetFlag {
		root := "."
		if flag.NArg() > 0 {
			root = flag.Arg(0)
		}
		m, err := verdict.Generate(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pipelint:", err)
			os.Exit(2)
		}
		var out []byte
		if *budgetFlag {
			out = []byte(budgetTable(m))
		} else {
			out = m.JSON()
		}
		// The manifest is the CI drift gate's input: a short write (full
		// disk, closed pipe) that still exited 0 would let a truncated
		// manifest pass for the real one.
		if _, err := os.Stdout.Write(out); err != nil {
			fmt.Fprintln(os.Stderr, "pipelint: writing manifest to stdout:", err)
			os.Exit(2)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	suite := analysis.All()
	if *flowFlag {
		suite = append(suite, flow.All()...)
	}
	os.Exit(standalone(args, suite, *jsonFlag))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: pipelint [-flow] [-json] [packages]\n"+
		"   or: go vet -vettool=$(which pipelint) [packages]\n\nanalyzers:\n")
	for _, a := range analysis.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nflow-sensitive analyzers (-flow, standalone mode only):\n")
	for _, a := range flow.All() {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// printVersion implements the -V=full handshake: the go command derives
// the tool's cache-busting ID from the trailing buildID field, so it is a
// content hash of the executable (matching unitchecker's behaviour).
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil)[:12])
}

// jsonDiag is the machine-readable diagnostic shape emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// standalone lists, loads, and analyzes the packages matching the
// patterns, printing diagnostics to stderr (or, with -json, to stdout as
// a JSON array). Exit code 1 means findings, 2 means operational failure.
func standalone(patterns []string, suite []*analysis.Analyzer, asJSON bool) int {
	pkgs, err := load.GoList(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pipelint:", err)
		return 2
	}

	// Export data of the whole graph, for fast dependency importing.
	exports := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	found := []jsonDiag{}
	failed := false
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if len(p.GoFiles) == 0 {
			// go list -e turns an unresolvable pattern into a stub
			// package carrying the error; surface it instead of
			// silently analyzing nothing.
			if p.Error != nil {
				fmt.Fprintf(os.Stderr, "pipelint: %s: %s\n", p.ImportPath, p.Error.Err)
				failed = true
			}
			continue
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(os.Stderr, "pipelint: skipping %s (cgo)\n", p.ImportPath)
			continue
		}
		diags, err := checkPackage(fset, p.ImportPath, p.Dir, p.AbsFiles(), nil, exports, suite)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipelint: %s: %v\n", p.ImportPath, err)
			failed = true
			continue
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if !d.Pos.IsValid() {
				// Anchor position-less findings to the package's first
				// file: the JSON consumers (the CI annotation lane's jq
				// pass) require a non-empty file and a 1-based line.
				if fs := p.AbsFiles(); len(fs) > 0 {
					pos.Filename = fs[0]
				}
				pos.Line, pos.Column = 1, 1
			}
			found = append(found, jsonDiag{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Category,
				Message:  d.Message,
			})
			if !asJSON {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", pos, d.Message, d.Category)
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(found); err != nil {
			fmt.Fprintln(os.Stderr, "pipelint:", err)
			return 2
		}
	}
	switch {
	case failed:
		return 2
	case len(found) > 0:
		return 1
	}
	return 0
}

// budgetTable renders the manifest's cell-budget section as a
// human-readable table: entries, then groups, then seqsafe verdicts,
// each sorted by name so the output is stable run to run.
func budgetTable(m *verdict.Manifest) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 8, 2, ' ', 0)

	fmt.Fprintln(w, "Cell budgets per entry point (symbolic bound on cells allocated per call):")
	fmt.Fprintln(w, "ENTRY\tCLASS\tBUDGET\tATTRIBUTION")
	for _, e := range sortedKeys(m.CellBudget.Entries) {
		bv := m.CellBudget.Entries[e]
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", e, m.Entries[e].Class, budgetString(bv), bv.Detail)
	}

	fmt.Fprintln(w, "\nGroup budgets (weakest analyzed member; unanalyzed twins inherit these):")
	fmt.Fprintln(w, "GROUP\tCLASS\tBUDGET")
	for _, g := range sortedKeys(m.CellBudget.Groups) {
		fmt.Fprintf(w, "%s\t%s\t%s\n", g, m.Groups[g].Class, budgetString(m.CellBudget.Groups[g]))
	}

	fmt.Fprintln(w, "\nSeqsafe (GrainCutoff eligibility: below-cutoff sequential twins proven cell-free):")
	fmt.Fprintln(w, "ENTRY\tSAFE\tDETAIL")
	for _, e := range sortedKeys(m.CellBudget.SeqSafe) {
		sv := m.CellBudget.SeqSafe[e]
		fmt.Fprintf(w, "%s\t%v\t%s\n", e, sv.Safe, sv.Detail)
	}

	w.Flush()
	return b.String()
}

func budgetString(b verdict.Budget) string {
	if !b.Claims() {
		return verdict.BudgetUnanalyzed
	}
	return fmt.Sprintf("%s(%d)", b.Kind, b.K)
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// checkPackage typechecks one package — via export data when available,
// falling back to typechecking dependencies from source (load.LoadPackage)
// — and runs the analyzer suite over it.
func checkPackage(fset *token.FileSet, pkgPath, dir string, files []string, importMap, exports map[string]string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	pkg, err := load.LoadPackage(fset, pkgPath, dir, files, importMap, exports)
	if err != nil {
		return nil, err
	}
	return analysis.Run(suite, fset, pkg.Files, pkg.Types, pkg.Info)
}
