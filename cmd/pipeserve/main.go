// Command pipeserve runs the sharded batching set-operation server of
// internal/serve behind an HTTP/JSON interface.
//
//	pipeserve -addr :8080 -p 8 -highwater 4096 -backend treap -shards 4
//
//	POST /op      {"op":"union","keys":[1,2,3]}   → {"versions":[1,0,1,0]}
//	              {"op":"difference","keys":[2]}  → {"versions":[2,0,0,0]}
//	              {"op":"contains","key":1}       → {"version":2,"contains":true}
//	              {"op":"len"}                    → {"versions":[2,0,1,0],"len":2}
//	POST /dag     {"nodes":[{"ref":"set"},{"keys":[2,9]},
//	               {"op":"union","args":[0,1]}],"want":"count"}
//	              → {"versions":[1,0,1,0],"count":4}   (one fused round-trip)
//	GET  /metrics → server + scheduler + per-shard counters (JSON)
//	GET  /keys    → full contents (verification endpoint)
//
// -backend selects the per-shard store: treap (pipelined, the default)
// or t26 (2-6 trees, batch-synchronous). -shards range-partitions the
// key space of [0, -universe) across that many independent roots.
//
// Shed load answers 429 (over the high-water mark) or 503 (draining).
// SIGINT/SIGTERM triggers a graceful drain: stop admitting, finish every
// admitted request, quiesce the scheduler, exit.
//
// -smoke runs a self-driving smoke check instead of serving: for each
// backend it binds a loopback port, drives a mixed batch over real HTTP,
// asserts the metrics endpoint reports scheduler activity, drains, and
// exits non-zero on any failure.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pipefut/internal/persist"
	"pipefut/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		p          = flag.Int("p", runtime.GOMAXPROCS(0), "scheduler worker count")
		highWater  = flag.Int("highwater", serve.DefaultHighWater, "admission high-water mark (backlog at which requests shed)")
		spawnDepth = flag.Int("spawndepth", 0, "algorithm spawn depth (0 = default grain)")
		cutoff     = flag.Int("cutoff", 0, "grain cutoff: subtree size served by one chunk cell (0 = default, negative = off; treap backend, seqsafe-proven entries only)")
		backend    = flag.String("backend", "treap", "per-shard store: treap (pipelined) or t26 (batch-synchronous)")
		shards     = flag.Int("shards", 1, "independent shard roots the key space is range-partitioned across")
		universe   = flag.Int("universe", serve.DefaultUniverse, "dense key range hint [0,universe) for placing shard pivots")
		dataDir    = flag.String("data-dir", "", "durability root: per-shard WAL + snapshots under <dir>/shard-<i>; empty = no persistence")
		fsync      = flag.String("fsync", "batch", "WAL fsync policy: batch (group commit), never, or always")
		snapEvery  = flag.Int("snapshot-every", 0, "per-shard snapshot cadence in versions (0 = default, negative = final snapshot only)")
		stealPol   = flag.String("steal-policy", serve.StealAffine, "scheduler steal policy: affine (shard-affine mailboxes + group-first steal-half) or baseline (uniform stealing)")
		smoke      = flag.Bool("smoke", false, "run a loopback HTTP smoke check (all backends, including a restart round-trip) and exit")
	)
	flag.Parse()

	known := false
	for _, b := range serve.KnownBackends() {
		if b == *backend {
			known = true
		}
	}
	if !known {
		log.Fatalf("pipeserve: unknown -backend %q (want one of %v)", *backend, serve.KnownBackends())
	}
	knownPol := false
	for _, pol := range serve.KnownStealPolicies() {
		if pol == *stealPol {
			knownPol = true
		}
	}
	if !knownPol {
		log.Fatalf("pipeserve: unknown -steal-policy %q (want one of %v)", *stealPol, serve.KnownStealPolicies())
	}
	if _, ok := persist.ParsePolicy(*fsync); !ok {
		log.Fatalf("pipeserve: unknown -fsync %q (want one of [batch never always])", *fsync)
	}

	cfg := serve.Config{P: *p, SpawnDepth: *spawnDepth, GrainCutoff: *cutoff,
		HighWater: *highWater, Backend: *backend, Shards: *shards, Universe: *universe,
		DataDir: *dataDir, Fsync: *fsync, SnapshotEvery: *snapEvery, StealPolicy: *stealPol}
	if *smoke {
		// Smoke both backends and both steal policies regardless of the
		// flags: the CI lane should exercise the whole matrix in one
		// invocation. Each backend also runs a persistent restart
		// round-trip in a temp data dir (under the configured policy).
		for _, b := range serve.KnownBackends() {
			c := cfg
			c.Backend = b
			if c.Shards <= 1 {
				c.Shards = 4 // default smoke covers the sharded path too
			}
			c.DataDir = "" // phase 1: the classic in-memory smoke
			for _, pol := range serve.KnownStealPolicies() {
				c.StealPolicy = pol
				if err := runSmoke(c); err != nil {
					log.Fatalf("smoke[%s/%s]: FAIL: %v", b, pol, err)
				}
			}
			c.StealPolicy = *stealPol
			if err := runRestartSmoke(c); err != nil {
				log.Fatalf("smoke[%s/restart]: FAIL: %v", b, err)
			}
			fmt.Printf("smoke[%s]: ok\n", b)
		}
		return
	}

	s, err := serve.Open(cfg)
	if err != nil {
		log.Fatalf("pipeserve: open: %v", err)
	}
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("pipeserve: listening on %s (p=%d highwater=%d backend=%s shards=%d)",
		*addr, *p, *highWater, *backend, *shards)

	select {
	case got := <-sig:
		log.Printf("pipeserve: %v — draining", got)
	case err := <-errc:
		log.Fatalf("pipeserve: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("pipeserve: http shutdown: %v", err)
	}
	s.Close()
	m := s.Metrics()
	log.Printf("pipeserve: drained: offered=%d admitted=%d completed=%d shed=%d",
		m.Offered, m.Admitted, m.Completed, m.ShedOverload+m.ShedDraining)
	if *dataDir != "" {
		log.Printf("pipeserve: durable: policy=%s wal_records=%d bytes_logged=%d snapshots=%d",
			m.Persist, m.WalRecords, m.BytesLogged, m.Snapshots)
	}
}

// runSmoke drives the server end to end over a real loopback socket: a
// mixed mutation/read batch, a metrics scrape asserting scheduler
// activity, and a clean drain.
func runSmoke(cfg serve.Config) error {
	s := serve.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()

	post := func(body string) (map[string]any, error) {
		resp, err := http.Post(base+"/op", "application/json", bytes.NewBufferString(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %v", resp.StatusCode, out)
		}
		return out, nil
	}

	// Mixed batch: unions, a difference, an intersect, then reads.
	for i := 0; i < 8; i++ {
		keys := make([]int, 256)
		for j := range keys {
			keys[j] = (i*97 + j*13) % 2048
		}
		b, _ := json.Marshal(map[string]any{"op": "union", "keys": keys})
		if _, err := post(string(b)); err != nil {
			return fmt.Errorf("union %d: %w", i, err)
		}
	}
	if _, err := post(`{"op":"difference","keys":[0,13,26]}`); err != nil {
		return fmt.Errorf("difference: %w", err)
	}
	if _, err := post(`{"op":"intersect","keys":[1,2,3,4,5,6,7,8,9,10]}`); err != nil {
		return fmt.Errorf("intersect: %w", err)
	}
	got, err := post(`{"op":"contains","key":5}`)
	if err != nil {
		return fmt.Errorf("contains: %w", err)
	}
	if c, ok := got["contains"].(bool); !ok || !c {
		return fmt.Errorf("contains(5) = %v, want true", got["contains"])
	}
	if _, err := post(`{"op":"len"}`); err != nil {
		return fmt.Errorf("len: %w", err)
	}

	// DAG round-trip: (set ∪ {4000,4001}) \ {1..10} in one request, with
	// a known-count check — after the intersect above the set is exactly
	// {1..10}, so the result must be the two literal keys.
	postTo := func(path, body string) (map[string]any, int, error) {
		resp, err := http.Post(base+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, resp.StatusCode, err
		}
		return out, resp.StatusCode, nil
	}
	dag, code, err := postTo("/dag", `{"nodes":[{"ref":"set"},{"keys":[4000,4001]},{"op":"union","args":[0,1]},{"keys":[1,2,3,4,5,6,7,8,9,10]},{"op":"difference","args":[2,3]}],"want":"keys"}`)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("dag: status %d err %w body %v", code, err, dag)
	}
	if n, ok := dag["count"].(float64); !ok || n != 2 {
		return fmt.Errorf("dag count = %v, want 2 (body %v)", dag["count"], dag)
	}
	// Typed rejects: an unknown set name and a malformed shape are 400s.
	if out, code, err := postTo("/dag", `{"nodes":[{"ref":"users"}]}`); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("dag unknown set: status %d err %v body %v, want 400", code, err, out)
	}
	if out, code, err := postTo("/dag", `{"nodes":[{"op":"union","args":[0,0]}]}`); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("dag self-cycle: status %d err %v body %v, want 400", code, err, out)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var m serve.Metrics
	err = json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	if m.Spawns == 0 {
		return fmt.Errorf("metrics report zero scheduler spawns after mixed batch: %+v", m)
	}
	if m.Admitted == 0 || m.Completed != m.Admitted {
		return fmt.Errorf("admitted=%d completed=%d, want equal and nonzero", m.Admitted, m.Completed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("http shutdown: %w", err)
	}
	s.Close()
	if m := s.Metrics(); m.Inflight != 0 {
		return fmt.Errorf("inflight=%d after drain, want 0", m.Inflight)
	}
	fmt.Printf("smoke: spawns=%d suspensions=%d admitted=%d batches=%d\n",
		m.Spawns, m.Suspensions, m.Admitted, m.Batches)
	return nil
}

// runRestartSmoke exercises the durability layer end to end: mutate a
// persistent server, drain it cleanly, reopen the same data dir, and
// assert the contents survived — with zero log records replayed, since
// a clean drain flushes the WAL and snapshots the head version.
func runRestartSmoke(cfg serve.Config) error {
	dir, err := os.MkdirTemp("", "pipeserve-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	cfg.DataDir = dir
	cfg.Fsync = "batch"
	cfg.SnapshotEvery = 4

	s, err := serve.Open(cfg)
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}
	for i := 0; i < 8; i++ {
		keys := make([]int, 128)
		for j := range keys {
			keys[j] = (i*131 + j*17) % 4096
		}
		if _, err := s.Apply(serve.OpUnion, keys); err != nil {
			s.Close()
			return fmt.Errorf("union %d: %w", i, err)
		}
	}
	if _, err := s.Apply(serve.OpDifference, []int{0, 17, 34}); err != nil {
		s.Close()
		return fmt.Errorf("difference: %w", err)
	}
	want, _, err := s.Keys()
	if err != nil {
		s.Close()
		return fmt.Errorf("keys: %w", err)
	}
	s.Close()

	r, err := serve.Open(cfg)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer r.Close()
	got, _, err := r.Keys()
	if err != nil {
		return fmt.Errorf("recovered keys: %w", err)
	}
	if len(got) != len(want) {
		return fmt.Errorf("recovered %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("recovered keys[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	m := r.Metrics()
	if m.Replayed != 0 {
		return fmt.Errorf("clean stop replayed %d records, want 0", m.Replayed)
	}
	if m.Persist != "batch" {
		return fmt.Errorf("metrics persist=%q, want batch", m.Persist)
	}
	fmt.Printf("smoke restart: keys=%d replayed=%d\n", len(got), m.Replayed)
	return nil
}
