// Command mlrun runs programs written in the paper's ML-with-futures
// subset (Appendix, Figure 13) under the Section 2 cost semantics and
// reports the result together with the computation's work, depth, and
// linearity — the "language-based cost model" as a usable tool.
//
// Usage:
//
//	mlrun -f prog.ml -e 'main(100)'      # run expression against a file
//	mlrun -paper -e 'consume(?produce(1000), 0)'
//	echo 'fun f(x) = x * x' | mlrun -e 'f(12)'
//
// The expression may call any function of the program; its value is
// printed in ML syntax (futures fully forced).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pipefut/internal/core"
	"pipefut/internal/ml"
)

func main() {
	var (
		file  = flag.String("f", "", "program file (default: read from stdin unless -paper)")
		expr  = flag.String("e", "", "expression to evaluate (required)")
		paper = flag.Bool("paper", false, "use the built-in transcription of the paper's Figures 1-4")
	)
	flag.Parse()
	if *expr == "" {
		fmt.Fprintln(os.Stderr, "mlrun: -e expression is required")
		os.Exit(2)
	}

	var src string
	switch {
	case *paper:
		src = ml.PaperSource
	case *file != "":
		b, err := os.ReadFile(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlrun:", err)
			os.Exit(1)
		}
		src = string(b)
	default:
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mlrun:", err)
			os.Exit(1)
		}
		src = string(b)
	}

	prog, err := ml.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlrun:", err)
		os.Exit(1)
	}

	eng := core.NewEngine(nil)
	interp := ml.NewInterp(prog, eng)
	v, err := interp.EvalExpr(eng.NewCtx(), *expr, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlrun:", err)
		os.Exit(1)
	}
	v = ml.Deep(v)
	costs := eng.Finish()

	fmt.Printf("value: %s\n", ml.Show(v))
	fmt.Printf("work:  %d\n", costs.Work)
	fmt.Printf("depth: %d\n", costs.Depth)
	fmt.Printf("parallelism: %.1f   forks: %d   cells: %d   linear: %v\n",
		costs.AvgParallelism(), costs.Forks, costs.Cells, costs.Linear())
}
