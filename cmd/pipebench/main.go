// Command pipebench regenerates the experiments of DESIGN.md: for every
// theorem, corollary, and figure of "Pipelining with Futures" it measures
// the relevant computation in the cost model (or on real goroutines for the
// wall-clock experiments) and prints a paper-style table.
//
// Usage:
//
//	pipebench                 # run every experiment
//	pipebench -exp merge      # run one experiment
//	pipebench -list           # list experiments
//	pipebench -maxlgn 16      # bound input sizes at 2^16
//	pipebench -trials 5       # more repetitions for the randomized runs
//	pipebench -smoke          # tiny inputs, one trial (CI smoke lane)
//	pipebench -json out.json  # also emit JSON-lines data points (benchguard input)
package main

import (
	"flag"
	"fmt"
	"os"

	"pipefut/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment ID to run (default: all)")
		list   = flag.Bool("list", false, "list experiments and exit")
		maxLgN = flag.Int("maxlgn", bench.DefaultConfig.MaxLgN, "largest input size is 2^maxlgn")
		seed   = flag.Uint64("seed", bench.DefaultConfig.Seed, "workload seed")
		trials = flag.Int("trials", bench.DefaultConfig.Trials, "trials per point for randomized experiments")
		smoke  = flag.Bool("smoke", false, "smoke-test mode: cap inputs at 2^12 and run one trial")
		jsonF  = flag.String("json", "", "also write machine-readable data points (JSON lines) to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %-28s %s\n", e.ID, e.Paper, e.Claim)
		}
		return
	}

	cfg := bench.Config{MaxLgN: *maxLgN, Seed: *seed, Trials: *trials}
	if *smoke {
		cfg.MaxLgN = min(cfg.MaxLgN, bench.QuickConfig.MaxLgN)
		cfg.Trials = 1
	}
	if *jsonF != "" {
		f, err := os.Create(*jsonF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		cfg.JSONOut = f
	}
	run := func(e bench.Experiment) {
		fmt.Printf("### %s — %s\n### %s\n\n", e.ID, e.Paper, e.Claim)
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "pipebench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
	}

	if *exp != "" {
		e, ok := bench.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "pipebench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		run(e)
		return
	}
	for _, e := range bench.All() {
		run(e)
	}
}
