// Command dagdump records the computation DAG of one of the paper's
// algorithms and prints either summary statistics (work, depth, edge
// counts, parallelism profile) or the DAG itself as Graphviz DOT — the tool
// that regenerates Figure 1-style drawings for any algorithm at any size.
//
// Usage:
//
//	dagdump -alg merge -n 8 -dot > merge8.dot   # drawable DAG
//	dagdump -alg union -n 4096                  # statistics + schedule
//	dagdump -alg prodcons -n 10 -dot
//	dagdump -alg quicksort -n 512 -verify       # re-check model invariants
//
// With -verify the recorded DAG is checked against the cost-model
// invariants (trace.Verify: topological IDs, single-assignment cells,
// write-before-touch data edges, consistent edge counts) before any
// output; verification failure exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"pipefut/internal/core"
	"pipefut/internal/costalg"
	"pipefut/internal/machine"
	"pipefut/internal/seqtreap"
	"pipefut/internal/seqtree"
	"pipefut/internal/t26"
	"pipefut/internal/trace"
	"pipefut/internal/workload"
)

func main() {
	var (
		alg    = flag.String("alg", "merge", "algorithm: merge|union|diff|intersect|t26|quicksort|prodcons|mergesort")
		n      = flag.Int("n", 1024, "input size (per tree where applicable)")
		seed   = flag.Uint64("seed", 42, "workload seed")
		dot    = flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
		verify = flag.Bool("verify", false, "check the recorded DAG against the model invariants (trace.Verify)")
	)
	flag.Parse()

	tr := trace.New()
	eng := core.NewEngine(tr)
	ctx := eng.NewCtx()
	rng := workload.NewRNG(*seed)

	switch *alg {
	case "merge":
		ka, kb := workload.DisjointKeySets(rng, *n, *n)
		sort.Ints(ka)
		sort.Ints(kb)
		r := costalg.Merge(ctx,
			costalg.FromSeqTree(eng, seqtree.FromSortedBalanced(ka)),
			costalg.FromSeqTree(eng, seqtree.FromSortedBalanced(kb)))
		costalg.CompletionTime(r)
	case "union", "diff", "intersect":
		ka, kb := workload.OverlappingKeySets(rng, *n, *n, 0.3)
		a := costalg.FromSeqTreap(eng, seqtreap.FromKeys(ka))
		b := costalg.FromSeqTreap(eng, seqtreap.FromKeys(kb))
		var r costalg.Tree
		switch *alg {
		case "union":
			r = costalg.Union(ctx, a, b)
		case "diff":
			r = costalg.Diff(ctx, a, b)
		default:
			r = costalg.Intersect(ctx, a, b)
		}
		costalg.CompletionTime(r)
	case "t26":
		all := workload.DistinctKeys(rng, 2*(*n), 8*(*n))
		base := t26.FromKeys(all[:*n])
		ins := append([]int(nil), all[*n:]...)
		sort.Ints(ins)
		r := costalg.T26BulkInsert(ctx, costalg.FromSeqT26(eng, base),
			workload.WellSeparatedLevels(ins))
		costalg.T26CompletionTime(r)
	case "quicksort":
		r := costalg.Quicksort(ctx, costalg.FromSlice(eng, rng.Perm(*n)),
			core.Done[*costalg.LNode](eng, nil))
		costalg.ListCompletionTime(r)
	case "prodcons":
		costalg.Consume(ctx, costalg.Produce(ctx, *n))
	case "mergesort":
		r := costalg.Mergesort(ctx, rng.Perm(*n))
		costalg.CompletionTime(r)
	default:
		fmt.Fprintf(os.Stderr, "dagdump: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}
	costs := eng.Finish()

	if *verify {
		// No linearity bound: some algorithms (deliberately) re-read
		// cells; the structural and single-assignment invariants must
		// hold regardless.
		if err := trace.Verify(tr); err != nil {
			fmt.Fprintln(os.Stderr, "dagdump: verification FAILED:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dagdump: trace verified: %d nodes, all model invariants hold\n", tr.Len())
	}

	if *dot {
		if err := tr.WriteDOT(os.Stdout, *alg); err != nil {
			fmt.Fprintln(os.Stderr, "dagdump:", err)
			os.Exit(1)
		}
		return
	}

	s := tr.Summary()
	fmt.Printf("algorithm:   %s (n=%d, seed=%d)\n", *alg, *n, *seed)
	fmt.Printf("work:        %d\n", s.Work)
	fmt.Printf("depth:       %d\n", s.Depth)
	fmt.Printf("parallelism: %.1f (work/depth)\n", costs.AvgParallelism())
	fmt.Printf("edges:       %d thread, %d fork, %d data\n", s.ThreadEdges, s.ForkEdges, s.DataEdges)
	fmt.Printf("futures:     %d forks, %d cells, %d touches, linear=%v\n",
		costs.Forks, costs.Cells, costs.Touches, costs.Linear())

	// Parallelism profile: how many actions sit at each DAG level — the
	// width the machine can exploit.
	levels := tr.Levels()
	width := map[int64]int64{}
	for _, l := range levels {
		width[l]++
	}
	var maxW int64
	for _, w := range width {
		if w > maxW {
			maxW = w
		}
	}
	fmt.Printf("max level width: %d\n", maxW)

	fmt.Println("\ngreedy schedule (Lemma 4.1, stack discipline):")
	fmt.Printf("%8s %10s %10s %12s %9s %12s\n", "p", "steps", "bound", "speedup", "util", "suspensions")
	for p := 1; p <= 1024; p *= 4 {
		r, err := machine.Run(tr, p, machine.Stack)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dagdump:", err)
			os.Exit(1)
		}
		fmt.Printf("%8d %10d %10d %12.1f %9.3f %12d\n",
			p, r.Steps, r.BrentBound, r.Speedup(), r.Utilization(), r.Suspensions)
	}
}
