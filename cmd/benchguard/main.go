// Command benchguard compares a benchmark run against a checked-in
// baseline and fails on regression. It is the CI bench-regression gate:
//
//	pipebench -exp serve -smoke -json current.json
//	benchguard -baseline bench_baseline.json -current current.json
//
// Both files hold JSON-lines ServePoint records (internal/bench). Raw
// throughput is machine-dependent — CI runners differ run to run — so
// benchguard compares *shapes*, not absolute numbers, at two levels:
//
//   - Within each backend, every point's req/s is normalized by that
//     backend's median, and the normalized ratios are compared point by
//     point over the keys the two files share. A point regresses when
//     its normalized throughput falls more than -tolerance below the
//     baseline's — a shard count or load level that got slower than its
//     peers. (Normalization is per backend because the pooled speed
//     distribution is bimodal — treap and t26 sit ~10× apart — which
//     would pin the pooled median to the cliff edge and make every
//     ratio hostage to one noisy cell.)
//   - Across backends, the ratio of backend medians is compared between
//     the files, catching one backend uniformly slipping against the
//     other (e.g. treap pipelining quietly turning batch-synchronous)
//     that per-backend normalization is blind to.
//
// Duplicate keys aggregate by median first, so both the baseline and
// the CI current file can hold several appended sweeps to damp
// run-to-run noise. Uniformly faster or slower runners pass untouched.
//
// The JSON stream may also carry open-loop SLO points (exp "openloop",
// internal/bench SLOPoint: p99-at-offered-load per backend × steal
// policy × mix). When both files contain them, benchguard gates those
// too, with the same per-backend median normalization but inverted
// polarity — latency regresses *upward* — under its own -slo-tolerance
// band (tails are noisier than medians). Points past the saturation
// knee are skipped on either side's evidence: once the shed fraction
// exceeds -slo-shed-max the tail measures the window length, not the
// server.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pipefut/internal/bench"
)

func main() {
	var (
		baselineF = flag.String("baseline", "bench_baseline.json", "baseline JSON-lines file")
		currentF  = flag.String("current", "", "current-run JSON-lines file")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional drop in median-normalized throughput")
		minKeys   = flag.Int("minkeys", 3, "minimum shared (backend,p,shards,clients) keys required to judge")
		maxRatio  = flag.String("maxratio", "", "absolute caps on the current run's cross-backend median ratios, comma-separated a/b=max pairs (e.g. t26/treap=8); unlike the shift check these do not depend on the baseline")
		sloTol    = flag.Float64("slo-tolerance", 0.5, "allowed fractional rise in median-normalized open-loop p99 (SLO points)")
		sloShed   = flag.Float64("slo-shed-max", 0.05, "skip an SLO point when either file's shed fraction exceeds this (past the knee, the tail measures the window, not the server)")
	)
	flag.Parse()
	if *currentF == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}

	base, baseSLO, err := load(*baselineF)
	if err != nil {
		fatal(err)
	}
	cur, curSLO, err := load(*currentF)
	if err != nil {
		fatal(err)
	}

	baseN := normalize(base)
	curN := normalize(cur)

	var keys []string
	for k := range baseN.points {
		if _, ok := curN.points[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) < *minKeys {
		fatal(fmt.Errorf("only %d shared data-point keys between %s and %s (need ≥ %d) — sweeps diverged",
			len(keys), *baselineF, *currentF, *minKeys))
	}

	regressed := 0
	for _, k := range keys {
		b, c := baseN.points[k], curN.points[k]
		delta := c/b - 1
		status := "ok"
		if delta < -*tolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Printf("%-40s baseline %.3f  current %.3f  delta %+6.1f%%  %s\n", k, b, c, 100*delta, status)
	}

	// Cross-backend ratio: per-backend normalization hides one backend
	// uniformly slipping against another, so compare backend medians
	// pairwise between the files.
	var backends []string
	for b := range baseN.backendMed {
		if _, ok := curN.backendMed[b]; ok {
			backends = append(backends, b)
		}
	}
	sort.Strings(backends)
	for i, a := range backends {
		for _, b := range backends[i+1:] {
			rBase := baseN.backendMed[a] / baseN.backendMed[b]
			rCur := curN.backendMed[a] / curN.backendMed[b]
			shift := rCur/rBase - 1
			status := "ok"
			if shift < -*tolerance {
				status = fmt.Sprintf("REGRESSED (%s slipped vs %s)", a, b)
				regressed++
			} else if 1/(1+shift)-1 > *tolerance {
				status = fmt.Sprintf("REGRESSED (%s slipped vs %s)", b, a)
				regressed++
			}
			fmt.Printf("%-40s baseline %.3f  current %.3f  shift %+6.1f%%  %s\n",
				"ratio "+a+"/"+b, rBase, rCur, 100*shift, status)
		}
	}

	// Absolute ratio caps: the baseline-relative shift check above slides
	// with whatever got checked in, so a deliberate floor (e.g. "grain
	// coarsening must keep t26 within 8× of treap") needs its own gate
	// judged on the current run alone.
	caps, err := parseRatioCaps(*maxRatio)
	if err != nil {
		fatal(err)
	}
	for _, c := range caps {
		num, ok1 := curN.backendMed[c.num]
		den, ok2 := curN.backendMed[c.den]
		if !ok1 || !ok2 {
			fatal(fmt.Errorf("-maxratio %s/%s: current run has no such backend pair", c.num, c.den))
		}
		r := num / den
		status := "ok"
		if r > c.max {
			status = fmt.Sprintf("REGRESSED (cap %.2f)", c.max)
			regressed++
		}
		fmt.Printf("%-40s current %.3f  cap %.3f  %s\n", "maxratio "+c.num+"/"+c.den, r, c.max, status)
	}

	// Open-loop SLO points: gated only when both files carry them, so
	// a baseline refreshed before the openloop sweep existed does not
	// fail every run — but once both sides have them, at least one
	// below-the-knee point must be comparable, or the gate is vacuous.
	sloCompared := 0
	if len(baseSLO) > 0 && len(curSLO) > 0 {
		bs, cs := normalizeSLO(baseSLO), normalizeSLO(curSLO)
		var skeys []string
		for k := range bs.points {
			if _, ok := cs.points[k]; ok {
				skeys = append(skeys, k)
			}
		}
		sort.Strings(skeys)
		for _, k := range skeys {
			if bs.shedFrac[k] > *sloShed || cs.shedFrac[k] > *sloShed {
				fmt.Printf("%-40s skipped (past the knee: shed %.1f%% baseline, %.1f%% current)\n",
					"slo "+k, 100*bs.shedFrac[k], 100*cs.shedFrac[k])
				continue
			}
			b, c := bs.points[k], cs.points[k]
			delta := c/b - 1
			status := "ok"
			if delta > *sloTol { // latency: up is bad
				status = "REGRESSED"
				regressed++
			}
			sloCompared++
			fmt.Printf("%-40s baseline %.3f  current %.3f  delta %+6.1f%%  %s\n", "slo "+k, b, c, 100*delta, status)
		}
		if sloCompared == 0 {
			fatal(fmt.Errorf("both files carry SLO points but none are comparable below the knee — sweeps diverged or everything saturated"))
		}
	}

	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d checks regressed more than %.0f%% (median-normalized)\n",
			regressed, 100**tolerance)
		os.Exit(1)
	}
	fmt.Printf("benchguard: %d points, %d backend ratios, and %d SLO points within tolerance of baseline\n",
		len(keys), len(backends)*(len(backends)-1)/2, sloCompared)
}

type ratioCap struct {
	num, den string
	max      float64
}

// parseRatioCaps parses "a/b=1.5,c/d=8" into ratio caps.
func parseRatioCaps(s string) ([]ratioCap, error) {
	if s == "" {
		return nil, nil
	}
	var out []ratioCap
	for _, part := range strings.Split(s, ",") {
		var c ratioCap
		part = strings.TrimSpace(part)
		eq := strings.IndexByte(part, '=')
		sl := strings.IndexByte(part, '/')
		if sl < 0 || eq < sl {
			return nil, fmt.Errorf("-maxratio: %q is not of the form a/b=max", part)
		}
		c.num, c.den = part[:sl], part[sl+1:eq]
		if _, err := fmt.Sscanf(part[eq+1:], "%g", &c.max); err != nil {
			return nil, fmt.Errorf("-maxratio: bad bound in %q: %v", part, err)
		}
		out = append(out, c)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}

// load reads a JSON-lines file and sorts its records by the "exp"
// discriminator: serve sweep points and open-loop SLO points; lines
// from other experiments are ignored.
func load(path string) ([]bench.ServePoint, []bench.SLOPoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var out []bench.ServePoint
	var slo []bench.SLOPoint
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Exp string `json:"exp"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", path, err)
		}
		switch probe.Exp {
		case "serve":
			var p bench.ServePoint
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			if p.ReqPerSec > 0 {
				out = append(out, p)
			}
		case "openloop":
			var p bench.SLOPoint
			if err := json.Unmarshal(line, &p); err != nil {
				return nil, nil, fmt.Errorf("%s: %w", path, err)
			}
			if p.P99Nanos > 0 && p.Requests > 0 {
				slo = append(slo, p)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("%s: no serve data points", path)
	}
	return out, slo, nil
}

type normalized struct {
	// points maps each sweep key to its per-key median req/s divided by
	// its backend's median req/s.
	points map[string]float64
	// backendMed maps each backend to the median over its per-key medians.
	backendMed map[string]float64
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func normalize(pts []bench.ServePoint) normalized {
	byKey := make(map[string][]float64)
	keyBackend := make(map[string]string)
	for _, p := range pts {
		k := fmt.Sprintf("%s/p=%d/k=%d/clients=%d", p.Backend, p.P, p.Shards, p.Clients)
		byKey[k] = append(byKey[k], p.ReqPerSec)
		keyBackend[k] = p.Backend
	}
	keyMed := make(map[string]float64, len(byKey))
	perBackend := make(map[string][]float64)
	for k, xs := range byKey {
		m := median(xs)
		keyMed[k] = m
		perBackend[keyBackend[k]] = append(perBackend[keyBackend[k]], m)
	}
	n := normalized{points: make(map[string]float64, len(keyMed)), backendMed: make(map[string]float64, len(perBackend))}
	for b, xs := range perBackend {
		n.backendMed[b] = median(xs)
	}
	for k, m := range keyMed {
		n.points[k] = m / n.backendMed[keyBackend[k]]
	}
	return n
}

type sloNormalized struct {
	// points maps backend/policy/mix/offered keys to the per-key median
	// p99 divided by the backend's median p99 (shape, not nanoseconds).
	points map[string]float64
	// shedFrac maps each key to its median shed fraction, the
	// past-the-knee detector.
	shedFrac map[string]float64
}

func normalizeSLO(pts []bench.SLOPoint) sloNormalized {
	byKey := make(map[string][]float64)
	shedByKey := make(map[string][]float64)
	keyBackend := make(map[string]string)
	for _, p := range pts {
		k := fmt.Sprintf("%s/%s/%s/offered=%d", p.Backend, p.Policy, p.Mix, p.OfferedPerSec)
		byKey[k] = append(byKey[k], float64(p.P99Nanos))
		shedByKey[k] = append(shedByKey[k], float64(p.Shed)/float64(p.Requests))
		keyBackend[k] = p.Backend
	}
	keyMed := make(map[string]float64, len(byKey))
	perBackend := make(map[string][]float64)
	for k, xs := range byKey {
		m := median(xs)
		keyMed[k] = m
		perBackend[keyBackend[k]] = append(perBackend[keyBackend[k]], m)
	}
	backendMed := make(map[string]float64, len(perBackend))
	for b, xs := range perBackend {
		backendMed[b] = median(xs)
	}
	n := sloNormalized{points: make(map[string]float64, len(keyMed)), shedFrac: make(map[string]float64, len(keyMed))}
	for k, m := range keyMed {
		n.points[k] = m / backendMed[keyBackend[k]]
		n.shedFrac[k] = median(shedByKey[k])
	}
	return n
}
